//! Process-global metrics registry.
//!
//! Metrics are identified by `(name, sorted label pairs)`. Handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of the
//! registered cells; hot paths should acquire a handle once and reuse
//! it. Every mutation first checks the registry's enabled flag with one
//! relaxed load, so a disabled registry costs almost nothing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log₂ histogram buckets: bucket `i` counts values `v` with
/// `2^(i-1) < v <= 2^i` (bucket 0 counts `v == 0` and `v == 1`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Sorted `key=value` label set; part of a metric's identity.
pub type Labels = Vec<(String, String)>;

#[derive(Debug)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug)]
struct GaugeCell {
    value: AtomicI64,
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// Set-or-adjust gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Set to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// Log₂-bucketed histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

/// Bucket index for a recorded value: 0 for 0 and 1, otherwise the
/// position of the highest set bit (so bucket upper bounds are powers
/// of two).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        // ceil(log2(v)): highest bit position, +1 when not a power of two.
        let bits = 64 - v.leading_zeros() as usize;
        if v.is_power_of_two() {
            bits - 1
        } else {
            bits
        }
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of non-empty `(bucket_upper_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let c = self.cell.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_bound(i), c))
            })
            .collect()
    }

    /// Approximate quantile (`q` in `[0, 1]`) from bucket upper bounds.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.cell.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// A registry of named metrics.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<(String, Labels), Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// New enabled registry.
    pub fn new() -> Registry {
        Registry { enabled: Arc::new(AtomicBool::new(true)), metrics: Mutex::new(BTreeMap::new()) }
    }

    /// Enable or disable all mutation through this registry's handles.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether mutation is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Get or register the counter `name` with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or register the counter `name` with `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_owned(), normalize(labels));
        let mut map = self.metrics.lock().unwrap();
        let metric = map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell { value: AtomicU64::new(0) })));
        match metric {
            Metric::Counter(cell) => {
                Counter { enabled: Arc::clone(&self.enabled), cell: Arc::clone(cell) }
            }
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or register the gauge `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or register the gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_owned(), normalize(labels));
        let mut map = self.metrics.lock().unwrap();
        let metric = map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell { value: AtomicI64::new(0) })));
        match metric {
            Metric::Gauge(cell) => {
                Gauge { enabled: Arc::clone(&self.enabled), cell: Arc::clone(cell) }
            }
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or register the histogram `name` with no labels.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Get or register the histogram `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = (name.to_owned(), normalize(labels));
        let mut map = self.metrics.lock().unwrap();
        let metric = map.entry(key).or_insert_with(|| {
            Metric::Histogram(Arc::new(HistogramCell {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        });
        match metric {
            Metric::Histogram(cell) => {
                Histogram { enabled: Arc::clone(&self.enabled), cell: Arc::clone(cell) }
            }
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Reset every metric to zero (for tests and per-query profiles).
    pub fn reset(&self) {
        let map = self.metrics.lock().unwrap();
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.value.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.count.store(0, Ordering::Relaxed);
                    h.sum.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Prometheus text exposition of every registered metric.
    pub fn render_prometheus(&self) -> String {
        let map = self.metrics.lock().unwrap();
        let mut out = String::new();
        let mut last_name = None::<&str>;
        for ((name, labels), metric) in map.iter() {
            let lbl = render_labels(labels);
            // One TYPE line per metric name (label sets of the same
            // metric are adjacent in the BTreeMap).
            let announce = last_name != Some(name.as_str());
            last_name = Some(name.as_str());
            match metric {
                Metric::Counter(c) => {
                    if announce {
                        let _ = writeln!(out, "# TYPE {name} counter");
                    }
                    let _ = writeln!(out, "{name}{lbl} {}", c.value.load(Ordering::Relaxed));
                }
                Metric::Gauge(g) => {
                    if announce {
                        let _ = writeln!(out, "# TYPE {name} gauge");
                    }
                    let _ = writeln!(out, "{name}{lbl} {}", g.value.load(Ordering::Relaxed));
                }
                Metric::Histogram(h) => {
                    if announce {
                        let _ = writeln!(out, "# TYPE {name} histogram");
                    }
                    let mut cumulative = 0;
                    for i in 0..HISTOGRAM_BUCKETS {
                        let c = h.buckets[i].load(Ordering::Relaxed);
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_bound(i);
                        let lbl = render_labels_extra(labels, "le", &le.to_string());
                        let _ = writeln!(out, "{name}_bucket{lbl} {cumulative}");
                    }
                    let lbl_inf = render_labels_extra(labels, "le", "+Inf");
                    let _ = writeln!(out, "{name}_bucket{lbl_inf} {cumulative}");
                    let _ = writeln!(out, "{name}_sum{lbl} {}", h.sum.load(Ordering::Relaxed));
                    let _ = writeln!(out, "{name}_count{lbl} {}", h.count.load(Ordering::Relaxed));
                }
            }
        }
        out
    }

    /// JSON export: an array of metric objects.
    pub fn render_json(&self) -> String {
        let map = self.metrics.lock().unwrap();
        let mut out = String::from("[");
        for (i, ((name, labels), metric)) in map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(name, &mut out);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(k, &mut out);
                out.push(':');
                json_string(v, &mut out);
            }
            out.push('}');
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"counter\",\"value\":{}",
                        c.value.load(Ordering::Relaxed)
                    );
                }
                Metric::Gauge(g) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"gauge\",\"value\":{}",
                        g.value.load(Ordering::Relaxed)
                    );
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count.load(Ordering::Relaxed),
                        h.sum.load(Ordering::Relaxed)
                    );
                    let mut first = true;
                    for bi in 0..HISTOGRAM_BUCKETS {
                        let c = h.buckets[bi].load(Ordering::Relaxed);
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "[{},{}]", bucket_bound(bi), c);
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// `(name, rendered labels, value)` snapshot of scalar metrics, for
    /// text reports (histograms contribute their count and sum).
    pub fn snapshot(&self) -> Vec<(String, String, u64)> {
        let map = self.metrics.lock().unwrap();
        let mut out = Vec::new();
        for ((name, labels), metric) in map.iter() {
            let lbl = render_labels(labels);
            match metric {
                Metric::Counter(c) => {
                    out.push((name.clone(), lbl, c.value.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => {
                    out.push((name.clone(), lbl, g.value.load(Ordering::Relaxed).max(0) as u64));
                }
                Metric::Histogram(h) => {
                    out.push((
                        format!("{name}_count"),
                        lbl.clone(),
                        h.count.load(Ordering::Relaxed),
                    ));
                    out.push((format!("{name}_sum"), lbl, h.sum.load(Ordering::Relaxed)));
                }
            }
        }
        out
    }
}

fn normalize(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
    v.sort();
    v
}

fn render_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={:?}", v)).collect();
    format!("{{{}}}", inner.join(","))
}

fn render_labels_extra(labels: &Labels, key: &str, value: &str) -> String {
    let mut inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={:?}", v)).collect();
    inner.push(format!("{key}={value:?}"));
    format!("{{{}}}", inner.join(","))
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Enable/disable the global registry (`NGGC_METRICS=off` maps here).
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("test_gauge");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        // Same name returns the same cell.
        assert_eq!(r.counter("test_total").get(), 5);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        r.counter_with("rows", &[("format", "bed")]).add(10);
        r.counter_with("rows", &[("format", "vcf")]).add(2);
        assert_eq!(r.counter_with("rows", &[("format", "bed")]).get(), 10);
        assert_eq!(r.counter_with("rows", &[("format", "vcf")]).get(), 2);
        // Label order does not matter.
        r.counter_with("multi", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(r.counter_with("multi", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(9), 4);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value falls in a bucket whose bound is >= the value.
        for v in [0u64, 1, 2, 7, 100, 4096, 1 << 40] {
            assert!(bucket_bound(bucket_index(v)) >= v, "v={v}");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("latency");
        for v in [1u64, 2, 2, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1105);
        // Median lands in the bucket holding the 3rd observation (value 2).
        assert_eq!(h.quantile(0.5), 2);
        assert!(h.quantile(1.0) >= 1000);
        assert_eq!(h.quantile(0.0), 1); // clamped to first observation
        let buckets = h.buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 5);
    }

    #[test]
    fn disabled_registry_ignores_mutation() {
        let r = Registry::new();
        let c = r.counter("dropped");
        let h = r.histogram("dropped_h");
        r.set_enabled(false);
        c.add(100);
        h.record(5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn prometheus_and_json_exposition() {
        let r = Registry::new();
        r.counter_with("req_total", &[("node", "n1")]).add(3);
        r.gauge("busy").set(2);
        r.histogram("lat").record(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{node=\"n1\"} 3"), "{text}");
        assert!(text.contains("busy 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"8\"} 1"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
        let json = r.render_json();
        assert!(json.contains("\"name\":\"req_total\""), "{json}");
        assert!(json.contains("\"node\":\"n1\""), "{json}");
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn reset_zeroes_everything() {
        let r = Registry::new();
        r.counter("a").add(5);
        r.histogram("b").record(9);
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
        assert_eq!(r.histogram("b").count(), 0);
        assert_eq!(r.histogram("b").buckets().len(), 0);
    }
}
