//! A synthetic reference genome.
//!
//! The paper's experiments run against human data (hg19-era assemblies).
//! We model a configurable genome as named chromosomes with lengths whose
//! proportions follow the human assembly, scaled by a factor so that
//! experiments run anywhere from laptop-smoke-test to full-cardinality
//! size (DESIGN.md substitution table).

use nggc_gdm::Chrom;

/// Relative chromosome lengths of the human assembly (Mbp, hg19 rounded).
const HUMAN_CHROM_MBP: [(&str, u64); 24] = [
    ("chr1", 249),
    ("chr2", 243),
    ("chr3", 198),
    ("chr4", 191),
    ("chr5", 181),
    ("chr6", 171),
    ("chr7", 159),
    ("chr8", 146),
    ("chr9", 141),
    ("chr10", 136),
    ("chr11", 135),
    ("chr12", 134),
    ("chr13", 115),
    ("chr14", 107),
    ("chr15", 103),
    ("chr16", 90),
    ("chr17", 81),
    ("chr18", 78),
    ("chr19", 59),
    ("chr20", 63),
    ("chr21", 48),
    ("chr22", 51),
    ("chrX", 155),
    ("chrY", 59),
];

/// A synthetic genome: chromosome names and lengths.
#[derive(Debug, Clone)]
pub struct Genome {
    chroms: Vec<(Chrom, u64)>,
    total: u64,
}

impl Genome {
    /// Human-proportioned genome scaled by `scale` (1.0 = full 3.1 Gbp).
    pub fn human(scale: f64) -> Genome {
        assert!(scale > 0.0, "scale must be positive");
        let chroms: Vec<(Chrom, u64)> = HUMAN_CHROM_MBP
            .iter()
            .map(|&(name, mbp)| {
                (Chrom::new(name), ((mbp * 1_000_000) as f64 * scale).max(1000.0) as u64)
            })
            .collect();
        let total = chroms.iter().map(|(_, l)| l).sum();
        Genome { chroms, total }
    }

    /// A toy genome with `n` chromosomes of equal `len` (tests).
    pub fn toy(n: usize, len: u64) -> Genome {
        assert!(n > 0 && len > 0);
        let chroms: Vec<(Chrom, u64)> =
            (1..=n).map(|i| (Chrom::new(&format!("chr{i}")), len)).collect();
        Genome { total: len * n as u64, chroms }
    }

    /// Chromosomes with lengths.
    pub fn chromosomes(&self) -> &[(Chrom, u64)] {
        &self.chroms
    }

    /// Total genome length in bp.
    pub fn total_len(&self) -> u64 {
        self.total
    }

    /// Length of one chromosome.
    pub fn len_of(&self, chrom: &Chrom) -> Option<u64> {
        self.chroms.iter().find(|(c, _)| c == chrom).map(|(_, l)| *l)
    }

    /// Map a uniform position in `[0, total_len)` to `(chrom, offset)` —
    /// genome-proportional chromosome sampling.
    pub fn locate(&self, pos: u64) -> (Chrom, u64) {
        debug_assert!(pos < self.total);
        let mut acc = 0;
        for (c, l) in &self.chroms {
            if pos < acc + l {
                return (c.clone(), pos - acc);
            }
            acc += l;
        }
        let (c, l) = self.chroms.last().expect("non-empty genome");
        (c.clone(), l - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_scaling() {
        let g = Genome::human(0.001);
        assert_eq!(g.chromosomes().len(), 24);
        assert_eq!(g.len_of(&Chrom::new("chr1")), Some(249_000));
        assert!(g.total_len() > 3_000_000 / 1000 * 900);
    }

    #[test]
    fn locate_covers_boundaries() {
        let g = Genome::toy(3, 100);
        assert_eq!(g.locate(0), (Chrom::new("chr1"), 0));
        assert_eq!(g.locate(99), (Chrom::new("chr1"), 99));
        assert_eq!(g.locate(100), (Chrom::new("chr2"), 0));
        assert_eq!(g.locate(299), (Chrom::new("chr3"), 99));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        Genome::human(0.0);
    }
}
