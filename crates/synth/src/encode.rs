//! ENCODE-shaped synthetic ChIP-seq datasets.
//!
//! The paper's §2 experiment maps **2,423 ENCODE ChIP-seq samples holding
//! 83,899,526 peaks** onto 131,780 promoters. Real ENCODE data cannot be
//! shipped here, so this generator produces datasets with the same
//! *statistical shape* (DESIGN.md substitution table):
//!
//! * per-sample peak counts are log-normal around the ENCODE mean of
//!   ~34.6 k peaks/sample (83.9 M / 2423);
//! * peak widths are log-normal with median ≈ 300 bp (narrow marks);
//! * positions are genome-proportional with hotspot clustering;
//! * metadata mimic ENCODE conventions (`dataType`, `cell`, `antibody`,
//!   `treatment`), drawn from realistic vocabularies.

use crate::genome::Genome;
use nggc_gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// Cell lines observed across ENCODE (abridged vocabulary).
pub const CELLS: [&str; 8] =
    ["HeLa-S3", "K562", "GM12878", "HepG2", "A549", "MCF-7", "H1-hESC", "IMR90"];
/// ChIP antibodies / targets (abridged vocabulary).
pub const ANTIBODIES: [&str; 10] = [
    "CTCF", "POLR2A", "H3K27ac", "H3K4me1", "H3K4me3", "H3K36me3", "H3K9me3", "H3K27me3", "EZH2",
    "MYC",
];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct EncodeConfig {
    /// Number of samples to generate.
    pub samples: usize,
    /// Mean peaks per sample (ENCODE §2 experiment: ~34,627).
    pub mean_peaks_per_sample: f64,
    /// Median peak width in bp.
    pub median_peak_width: f64,
    /// Fraction of `dataType == ChipSeq` samples (the §2 SELECT keeps
    /// these); the rest are `DnaseSeq`.
    pub chipseq_fraction: f64,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig {
            samples: 24,
            mean_peaks_per_sample: 34_627.0,
            median_peak_width: 300.0,
            chipseq_fraction: 0.85,
            seed: 42,
        }
    }
}

/// The narrow-peak-like schema of generated samples.
pub fn encode_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("signal_value", ValueType::Float),
        Attribute::new("p_value", ValueType::Float),
    ])
    .expect("encode schema attributes are valid")
}

/// Generate an ENCODE-shaped dataset over `genome`.
pub fn generate_encode(genome: &Genome, config: &EncodeConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Log-normal peak counts: sigma 0.8 gives the heavy right tail ENCODE
    // shows (a few samples with hundreds of thousands of peaks).
    let count_sigma: f64 = 0.8;
    let count_mu = config.mean_peaks_per_sample.ln() - count_sigma * count_sigma / 2.0;
    let count_dist = LogNormal::new(count_mu, count_sigma).expect("valid lognormal");
    let width_sigma: f64 = 0.6;
    let width_dist =
        LogNormal::new(config.median_peak_width.ln(), width_sigma).expect("valid lognormal");

    // Shared hotspots: 1% of the genome attracts 30% of peaks (regulatory
    // regions recur across experiments, which is what makes MAP outputs
    // non-trivial).
    let n_hotspots = ((genome.total_len() / 1_000_000).max(10)) as usize;
    let hotspots: Vec<u64> =
        (0..n_hotspots).map(|_| rng.gen_range(0..genome.total_len())).collect();

    let mut ds = Dataset::new("ENCODE", encode_schema());
    for i in 0..config.samples {
        let n_peaks = count_dist.sample(&mut rng).round().max(1.0) as usize;
        let mut regions = Vec::with_capacity(n_peaks);
        for _ in 0..n_peaks {
            let width = width_dist.sample(&mut rng).round().max(20.0) as u64;
            let center = if rng.gen_bool(0.3) {
                let h = hotspots[rng.gen_range(0..hotspots.len())];
                let jitter = rng.gen_range(0..20_000u64);
                (h + jitter).min(genome.total_len() - 1)
            } else {
                rng.gen_range(0..genome.total_len())
            };
            let (chrom, offset) = genome.locate(center);
            let chrom_len = genome.len_of(&chrom).expect("located chromosome exists");
            let left = offset.saturating_sub(width / 2).min(chrom_len.saturating_sub(1));
            let right = (left + width).min(chrom_len);
            let signal = rng.gen_range(1.0..50.0f64);
            let p_value = 10f64.powf(-rng.gen_range(2.0..12.0f64));
            regions.push(
                GRegion::new(chrom.as_str(), left, right, Strand::Unstranded)
                    .with_values(vec![Value::Float(signal), Value::Float(p_value)]),
            );
        }
        let chipseq = i < (config.samples as f64 * config.chipseq_fraction) as usize;
        let metadata = Metadata::from_pairs([
            ("dataType", if chipseq { "ChipSeq" } else { "DnaseSeq" }),
            ("cell", CELLS[rng.gen_range(0..CELLS.len())]),
            ("antibody", ANTIBODIES[rng.gen_range(0..ANTIBODIES.len())]),
            ("treatment", if rng.gen_bool(0.2) { "IFNg" } else { "None" }),
            ("organism", "Homo sapiens"),
        ]);
        let sample = Sample::new(format!("enc_{i:05}"), "ENCODE")
            .with_regions(regions)
            .with_metadata(metadata);
        ds.add_sample_unchecked(sample);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Genome, Dataset) {
        let genome = Genome::human(0.001);
        let config =
            EncodeConfig { samples: 10, mean_peaks_per_sample: 200.0, ..Default::default() };
        let ds = generate_encode(&genome, &config);
        (genome, ds)
    }

    #[test]
    fn shape_and_validity() {
        let (_, ds) = small();
        assert_eq!(ds.sample_count(), 10);
        assert!(ds.region_count() > 500, "roughly 10×200 peaks");
        ds.validate().unwrap();
    }

    #[test]
    fn deterministic_by_seed() {
        let g = Genome::toy(2, 1_000_000);
        let c = EncodeConfig { samples: 3, mean_peaks_per_sample: 50.0, ..Default::default() };
        let a = generate_encode(&g, &c);
        let b = generate_encode(&g, &c);
        assert_eq!(a.region_count(), b.region_count());
        assert_eq!(a.samples[0].regions, b.samples[0].regions);
        let c2 = EncodeConfig { seed: 7, ..c };
        let d = generate_encode(&g, &c2);
        assert_ne!(a.samples[0].regions, d.samples[0].regions);
    }

    #[test]
    fn chipseq_fraction_respected() {
        let (_, ds) = small();
        let chip = ds.samples.iter().filter(|s| s.metadata.has("dataType", "ChipSeq")).count();
        assert_eq!(chip, 8, "85% of 10 rounds to 8 (deterministic split)");
    }

    #[test]
    fn regions_within_chromosomes() {
        let (g, ds) = small();
        for s in &ds.samples {
            for r in &s.regions {
                let len = g.len_of(&r.chrom).unwrap();
                assert!(r.right <= len, "{} exceeds {}", r, len);
                assert!(r.left < r.right);
            }
        }
    }
}
