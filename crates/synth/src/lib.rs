//! # `nggc-synth` — synthetic genomic workloads
//!
//! The paper evaluates on ENCODE/TCGA/UCSC data that cannot be shipped in
//! a reproduction; per DESIGN.md's substitution table, this crate
//! generates datasets with matched *statistical shape* — cardinalities,
//! region-length and position distributions, metadata vocabularies — so
//! every experiment exercises the same operator code paths at the same
//! (scaled) sizes:
//!
//! * [`genome`] — human-proportioned synthetic assemblies at any scale;
//! * [`encode`] — ENCODE-shaped ChIP-seq peak datasets (§2 experiment);
//! * [`annotations`] — genes and promoters (UCSC-style references);
//! * [`casestudy`] — the two §3 open problems with planted ground truth.
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]

pub mod annotations;
pub mod casestudy;
pub mod encode;
pub mod genome;

pub use annotations::{generate_annotations, generate_genes, AnnotationConfig, Gene};
pub use casestudy::{
    generate_ctcf_study, generate_replication_study, CtcfStudy, CtcfStudyConfig, ReplicationStudy,
    ReplicationStudyConfig,
};
pub use encode::{encode_schema, generate_encode, EncodeConfig};
pub use genome::Genome;
