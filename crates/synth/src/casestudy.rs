//! Generators for the paper's §3 case studies.
//!
//! Both open problems of §3 require data we cannot ship (IEO/IIT
//! experimental datasets), so we generate synthetic equivalents with
//! **planted ground truth**, which the example pipelines then recover —
//! demonstrating that the GMQL formulations of the two studies extract
//! the intended signal (DESIGN.md experiments E4 and E5).

use crate::annotations::{generate_genes, AnnotationConfig, Gene};
use crate::genome::Genome;
use nggc_gdm::{
    Attribute, Chrom, Dataset, GRegion, Metadata, Sample, Schema, Strand, Value, ValueType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// §3 problem 1: mutations / DNA breaks / replication / gene dis-regulation
// ---------------------------------------------------------------------------

/// Configuration of the replication–mutation study generator.
#[derive(Debug, Clone)]
pub struct ReplicationStudyConfig {
    /// Number of genes.
    pub genes: usize,
    /// Fraction of genes dis-regulated by oncogene induction.
    pub disregulated_fraction: f64,
    /// Fragile sites per dis-regulated gene (planted near them).
    pub fragile_sites_per_gene: f64,
    /// Background breakpoints (not at fragile sites).
    pub background_breaks: usize,
    /// Breakpoints per fragile site.
    pub breaks_per_site: usize,
    /// Mutations per fragile site (the planted correlation).
    pub mutations_per_site: usize,
    /// Background mutations.
    pub background_mutations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReplicationStudyConfig {
    fn default() -> Self {
        ReplicationStudyConfig {
            genes: 400,
            disregulated_fraction: 0.1,
            fragile_sites_per_gene: 1.0,
            background_breaks: 200,
            breaks_per_site: 12,
            mutations_per_site: 8,
            background_mutations: 300,
            seed: 1234,
        }
    }
}

/// The generated study: four datasets + ground truth.
#[derive(Debug)]
pub struct ReplicationStudy {
    /// Gene expression under two conditions (2 samples: `condition` =
    /// `control` / `induced`; regions are gene bodies with `expression`).
    pub expression: Dataset,
    /// DNA double-strand break points (1 bp regions).
    pub breaks: Dataset,
    /// Somatic mutations (1 bp regions, `vaf` attribute).
    pub mutations: Dataset,
    /// Replication-timing domains (`timing` in [0,1], late = high).
    pub replication: Dataset,
    /// The genes, for reference.
    pub genes: Vec<Gene>,
    /// Names of the planted dis-regulated genes.
    pub disregulated: Vec<String>,
    /// Planted fragile sites `(chrom, left, right)`.
    pub fragile_sites: Vec<(Chrom, u64, u64)>,
}

/// Generate the §3-problem-1 study.
pub fn generate_replication_study(
    genome: &Genome,
    config: &ReplicationStudyConfig,
) -> ReplicationStudy {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let genes = generate_genes(
        genome,
        &AnnotationConfig { genes: config.genes, seed: config.seed ^ 0x5eed, ..Default::default() },
    );
    let n_dis = ((config.genes as f64) * config.disregulated_fraction).round() as usize;
    let disregulated: Vec<usize> = {
        // Deterministic sample of gene indices.
        let mut idx: Vec<usize> = (0..genes.len()).collect();
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        idx.truncate(n_dis);
        idx.sort_unstable();
        idx
    };

    // --- expression -------------------------------------------------------
    let expr_schema = Schema::new(vec![
        Attribute::new("gene", ValueType::Str),
        Attribute::new("expression", ValueType::Float),
    ])
    .expect("valid schema");
    let mut expression = Dataset::new("EXPRESSION", expr_schema);
    // Per-gene baseline expression shared by both conditions, so that
    // non-dis-regulated genes stay stable across them.
    let baselines: Vec<f64> = (0..genes.len()).map(|_| rng.gen_range(2.0..10.0f64)).collect();
    for condition in ["control", "induced"] {
        let mut regions = Vec::with_capacity(genes.len());
        for (i, g) in genes.iter().enumerate() {
            let base = baselines[i];
            let value = if condition == "induced" && disregulated.contains(&i) {
                // Strong dis-regulation: 4–8× down.
                base / rng.gen_range(4.0..8.0)
            } else {
                base * rng.gen_range(0.9..1.1)
            };
            regions.push(
                GRegion::new(g.chrom.as_str(), g.body.0, g.body.1, g.strand)
                    .with_values(vec![Value::Str(g.name.clone()), Value::Float(value)]),
            );
        }
        expression.add_sample_unchecked(
            Sample::new(format!("expr_{condition}"), "EXPRESSION")
                .with_regions(regions)
                .with_metadata(Metadata::from_pairs([
                    ("condition", condition),
                    ("assay", "RNA-seq"),
                ])),
        );
    }

    // --- fragile sites near dis-regulated genes ----------------------------
    let mut fragile_sites: Vec<(Chrom, u64, u64)> = Vec::new();
    for &gi in &disregulated {
        let g = &genes[gi];
        let n = config.fragile_sites_per_gene.round().max(1.0) as usize;
        for _ in 0..n {
            let chrom_len = genome.len_of(&g.chrom).expect("chrom exists");
            let center = (g.body.0 + rng.gen_range(0..(g.body.1 - g.body.0).max(1)))
                .min(chrom_len.saturating_sub(1));
            let half = rng.gen_range(2_000..10_000u64);
            fragile_sites.push((
                g.chrom.clone(),
                center.saturating_sub(half),
                (center + half).min(chrom_len),
            ));
        }
    }

    // --- breaks -------------------------------------------------------------
    let breaks_schema =
        Schema::new(vec![Attribute::new("intensity", ValueType::Float)]).expect("valid schema");
    let mut break_regions = Vec::new();
    for (chrom, l, r) in &fragile_sites {
        for _ in 0..config.breaks_per_site {
            let pos = rng.gen_range(*l..(*r).max(l + 1));
            break_regions.push(
                GRegion::new(chrom.as_str(), pos, pos + 1, Strand::Unstranded)
                    .with_values(vec![Value::Float(rng.gen_range(1.0..10.0))]),
            );
        }
    }
    for _ in 0..config.background_breaks {
        let (chrom, offset) = genome.locate(rng.gen_range(0..genome.total_len()));
        break_regions.push(
            GRegion::new(chrom.as_str(), offset, offset + 1, Strand::Unstranded)
                .with_values(vec![Value::Float(rng.gen_range(0.5..3.0))]),
        );
    }
    let mut breaks = Dataset::new("BREAKS", breaks_schema);
    breaks.add_sample_unchecked(
        Sample::new("breaks_induced", "BREAKS")
            .with_regions(break_regions)
            .with_metadata(Metadata::from_pairs([("assay", "BLESS"), ("condition", "induced")])),
    );

    // --- mutations -----------------------------------------------------------
    let mut_schema =
        Schema::new(vec![Attribute::new("vaf", ValueType::Float)]).expect("valid schema");
    let mut mut_regions = Vec::new();
    for (chrom, l, r) in &fragile_sites {
        for _ in 0..config.mutations_per_site {
            let pos = rng.gen_range(*l..(*r).max(l + 1));
            mut_regions.push(
                GRegion::new(chrom.as_str(), pos, pos + 1, Strand::Unstranded)
                    .with_values(vec![Value::Float(rng.gen_range(0.05..0.6))]),
            );
        }
    }
    for _ in 0..config.background_mutations {
        let (chrom, offset) = genome.locate(rng.gen_range(0..genome.total_len()));
        mut_regions.push(
            GRegion::new(chrom.as_str(), offset, offset + 1, Strand::Unstranded)
                .with_values(vec![Value::Float(rng.gen_range(0.05..0.6))]),
        );
    }
    let mut mutations = Dataset::new("MUTATIONS", mut_schema);
    mutations.add_sample_unchecked(
        Sample::new("tumor_panel", "MUTATIONS")
            .with_regions(mut_regions)
            .with_metadata(Metadata::from_pairs([("source", "synthetic-tcga")])),
    );

    // --- replication timing ---------------------------------------------------
    let rep_schema =
        Schema::new(vec![Attribute::new("timing", ValueType::Float)]).expect("valid schema");
    let mut rep_regions = Vec::new();
    for (chrom, chrom_len) in genome.chromosomes() {
        let domain = 500_000u64.min((chrom_len / 4).max(1));
        let mut pos = 0;
        while pos < *chrom_len {
            let end = (pos + domain).min(*chrom_len);
            // Late timing where a fragile site falls in the domain.
            let fragile_here =
                fragile_sites.iter().any(|(c, l, _)| c == chrom && *l >= pos && *l < end);
            let timing =
                if fragile_here { rng.gen_range(0.75..1.0f64) } else { rng.gen_range(0.0..0.6f64) };
            rep_regions.push(
                GRegion::new(chrom.as_str(), pos, end, Strand::Unstranded)
                    .with_values(vec![Value::Float(timing)]),
            );
            pos = end;
        }
    }
    let mut replication = Dataset::new("REPLICATION", rep_schema);
    replication.add_sample_unchecked(
        Sample::new("repliseq_induced", "REPLICATION")
            .with_regions(rep_regions)
            .with_metadata(Metadata::from_pairs([("assay", "Repli-seq")])),
    );

    let disregulated_names = disregulated.iter().map(|&i| genes[i].name.clone()).collect();
    ReplicationStudy {
        expression,
        breaks,
        mutations,
        replication,
        genes,
        disregulated: disregulated_names,
        fragile_sites,
    }
}

// ---------------------------------------------------------------------------
// §3 problem 2: CTCF loops, enhancers and gene regulation (Figure 3)
// ---------------------------------------------------------------------------

/// Configuration of the CTCF-loop study generator.
#[derive(Debug, Clone)]
pub struct CtcfStudyConfig {
    /// Number of CTCF loops.
    pub loops: usize,
    /// Number of genes.
    pub genes: usize,
    /// Fraction of loops enclosing a planted enhancer–gene pair.
    pub active_pair_fraction: f64,
    /// Decoy enhancers outside loops.
    pub decoy_enhancers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CtcfStudyConfig {
    fn default() -> Self {
        CtcfStudyConfig {
            loops: 120,
            genes: 400,
            active_pair_fraction: 0.4,
            decoy_enhancers: 80,
            seed: 99,
        }
    }
}

/// The generated CTCF study: datasets + planted truth.
#[derive(Debug)]
pub struct CtcfStudy {
    /// CTCF loop spans (`loop_id` attribute).
    pub loops: Dataset,
    /// Histone-mark peaks: three samples with `antibody` metadata
    /// (H3K27ac, H3K4me1 on enhancers; H3K4me3 on promoters), Figure 3's
    /// yellow/black rectangles.
    pub marks: Dataset,
    /// Gene + promoter annotations.
    pub annotations: Dataset,
    /// Gene expression (one sample; active genes high).
    pub expression: Dataset,
    /// Planted truth: (enhancer span, gene name) pairs inside loops.
    pub true_pairs: Vec<((Chrom, u64, u64), String)>,
}

/// Generate the §3-problem-2 study.
pub fn generate_ctcf_study(genome: &Genome, config: &CtcfStudyConfig) -> CtcfStudy {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let genes = generate_genes(
        genome,
        &AnnotationConfig { genes: config.genes, seed: config.seed ^ 0xc7cf, ..Default::default() },
    );

    let loop_schema =
        Schema::new(vec![Attribute::new("loop_id", ValueType::Str)]).expect("valid schema");
    let mark_schema =
        Schema::new(vec![Attribute::new("signal", ValueType::Float)]).expect("valid schema");

    let mut loop_regions = Vec::new();
    let mut enh_k27 = Vec::new();
    let mut enh_k4me1 = Vec::new();
    let mut prom_k4me3 = Vec::new();
    let mut true_pairs = Vec::new();
    let mut active_genes: Vec<String> = Vec::new();

    for li in 0..config.loops {
        // Anchor each loop on a random gene so the pair can be enclosed.
        let g = &genes[rng.gen_range(0..genes.len())];
        let chrom_len = genome.len_of(&g.chrom).expect("chrom exists");
        let span = rng.gen_range(100_000..400_000u64).min(chrom_len / 2);
        let left = g.promoter.0.saturating_sub(span / 2);
        let right = (left + span).min(chrom_len);
        loop_regions.push(
            GRegion::new(g.chrom.as_str(), left, right, Strand::Unstranded)
                .with_values(vec![Value::Str(format!("loop{li:04}"))]),
        );
        let active = rng.gen_bool(config.active_pair_fraction);
        if active && g.promoter.0 >= left && g.promoter.1 <= right {
            // Planted enhancer strictly inside the loop, away from the
            // promoter.
            let e_len = rng.gen_range(500..2000u64);
            let lo = left + span / 10;
            let hi = right.saturating_sub(span / 10 + e_len).max(lo + 1);
            let e_left = rng.gen_range(lo..hi);
            let e = (g.chrom.clone(), e_left, e_left + e_len);
            enh_k27.push(e.clone());
            enh_k4me1.push(e.clone());
            prom_k4me3.push((g.chrom.clone(), g.promoter.0, g.promoter.1));
            true_pairs.push((e, g.name.clone()));
            active_genes.push(g.name.clone());
        }
    }
    // Decoy enhancers: marked but outside loops (uniform positions).
    for _ in 0..config.decoy_enhancers {
        let (chrom, offset) = genome.locate(rng.gen_range(0..genome.total_len()));
        let chrom_len = genome.len_of(&chrom).expect("chrom exists");
        let left = offset.min(chrom_len.saturating_sub(1500));
        enh_k27.push((chrom.clone(), left, left + 1000));
        if rng.gen_bool(0.7) {
            enh_k4me1.push((chrom, left, left + 1000));
        }
    }

    let mk_regions = |spans: &[(Chrom, u64, u64)], rng: &mut StdRng| -> Vec<GRegion> {
        spans
            .iter()
            .map(|(c, l, r)| {
                GRegion::new(c.as_str(), *l, *r, Strand::Unstranded)
                    .with_values(vec![Value::Float(rng.gen_range(5.0..40.0))])
            })
            .collect()
    };

    let mut loops = Dataset::new("CTCF_LOOPS", loop_schema);
    loops.add_sample_unchecked(
        Sample::new("ctcf_loops", "CTCF_LOOPS")
            .with_regions(loop_regions)
            .with_metadata(Metadata::from_pairs([("antibody", "CTCF"), ("assay", "ChIA-PET")])),
    );

    let mut marks = Dataset::new("MARKS", mark_schema);
    for (name, antibody, spans) in [
        ("h3k27ac", "H3K27ac", &enh_k27),
        ("h3k4me1", "H3K4me1", &enh_k4me1),
        ("h3k4me3", "H3K4me3", &prom_k4me3),
    ] {
        let regions = mk_regions(spans, &mut rng);
        marks.add_sample_unchecked(
            Sample::new(name, "MARKS").with_regions(regions).with_metadata(Metadata::from_pairs([
                ("antibody", antibody),
                ("assay", "ChipSeq"),
            ])),
        );
    }

    // Annotations dataset reuses the standard builder shape.
    let annot_schema = crate::annotations::annotation_schema();
    let mut annotations = Dataset::new("ANNOTATIONS", annot_schema);
    let mut annot_regions = Vec::new();
    for g in &genes {
        annot_regions.push(
            GRegion::new(g.chrom.as_str(), g.body.0, g.body.1, g.strand)
                .with_values(vec![Value::Str("gene".into()), Value::Str(g.name.clone())]),
        );
        annot_regions.push(
            GRegion::new(g.chrom.as_str(), g.promoter.0, g.promoter.1, g.strand)
                .with_values(vec![Value::Str("promoter".into()), Value::Str(g.name.clone())]),
        );
    }
    annotations.add_sample_unchecked(
        Sample::new("refseq_synthetic", "ANNOTATIONS").with_regions(annot_regions),
    );

    let expr_schema = Schema::new(vec![
        Attribute::new("gene", ValueType::Str),
        Attribute::new("expression", ValueType::Float),
    ])
    .expect("valid schema");
    let mut expression = Dataset::new("EXPRESSION", expr_schema);
    let expr_regions = genes
        .iter()
        .map(|g| {
            let high = active_genes.contains(&g.name);
            let v = if high { rng.gen_range(20.0..80.0) } else { rng.gen_range(0.0..5.0) };
            GRegion::new(g.chrom.as_str(), g.body.0, g.body.1, g.strand)
                .with_values(vec![Value::Str(g.name.clone()), Value::Float(v)])
        })
        .collect();
    expression.add_sample_unchecked(
        Sample::new("expr", "EXPRESSION")
            .with_regions(expr_regions)
            .with_metadata(Metadata::from_pairs([("assay", "RNA-seq")])),
    );

    CtcfStudy { loops, marks, annotations, expression, true_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_study_shape() {
        let genome = Genome::human(0.001);
        let study = generate_replication_study(
            &genome,
            &ReplicationStudyConfig { genes: 100, ..Default::default() },
        );
        assert_eq!(study.expression.sample_count(), 2);
        assert_eq!(study.disregulated.len(), 10);
        assert!(!study.fragile_sites.is_empty());
        study.expression.validate().unwrap();
        study.breaks.validate().unwrap();
        study.mutations.validate().unwrap();
        study.replication.validate().unwrap();
        // Mutation density is higher at fragile sites than background.
        let frag_len: u64 = study.fragile_sites.iter().map(|(_, l, r)| r - l).sum();
        let muts_at_frag = study.mutations.samples[0]
            .regions
            .iter()
            .filter(|m| {
                study
                    .fragile_sites
                    .iter()
                    .any(|(c, l, r)| *c == m.chrom && m.left >= *l && m.left < *r)
            })
            .count();
        let total = study.mutations.region_count();
        let frag_density = muts_at_frag as f64 / frag_len as f64;
        let bg_density = (total - muts_at_frag) as f64 / genome.total_len() as f64;
        assert!(
            frag_density > bg_density * 5.0,
            "planted enrichment visible: {frag_density} vs {bg_density}"
        );
    }

    #[test]
    fn disregulated_genes_change_expression() {
        let genome = Genome::human(0.001);
        let study = generate_replication_study(&genome, &Default::default());
        let control = &study.expression.samples[0];
        let induced = &study.expression.samples[1];
        for (c, i) in control.regions.iter().zip(&induced.regions) {
            let name = c.values[0].as_str().unwrap();
            let fold = c.values[1].as_f64().unwrap() / i.values[1].as_f64().unwrap();
            if study.disregulated.contains(&name.to_string()) {
                assert!(fold > 2.0, "{name} should be strongly down: fold {fold}");
            } else {
                assert!(fold < 1.5, "{name} should be stable: fold {fold}");
            }
        }
    }

    #[test]
    fn ctcf_study_truth_pairs_inside_loops() {
        let genome = Genome::human(0.002);
        let study = generate_ctcf_study(&genome, &Default::default());
        assert!(!study.true_pairs.is_empty());
        let loop_sample = &study.loops.samples[0];
        for ((chrom, l, r), _gene) in &study.true_pairs {
            let enclosed = loop_sample
                .regions
                .iter()
                .any(|lp| lp.chrom == *chrom && lp.left <= *l && *r <= lp.right);
            assert!(enclosed, "planted enhancer must sit inside a loop");
        }
        study.loops.validate().unwrap();
        study.marks.validate().unwrap();
        assert_eq!(study.marks.sample_count(), 3);
    }
}
