//! Synthetic genome annotations: genes and promoters.
//!
//! The §2 experiment uses the UCSC annotation with **131,780 promoters**;
//! this generator lays out genes along the genome and derives promoter
//! regions as `[TSS - 2000, TSS + 500)`, the convention of genome
//! browsers. The resulting dataset carries an `annType` attribute so the
//! paper's `SELECT(annType == 'promoter')` runs verbatim.

use crate::genome::Genome;
use nggc_gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, Value, ValueType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annotation generator configuration.
#[derive(Debug, Clone)]
pub struct AnnotationConfig {
    /// Number of genes (the §2 experiment's promoter count: 131,780).
    pub genes: usize,
    /// Upstream promoter extent from the TSS.
    pub promoter_upstream: u64,
    /// Downstream promoter extent from the TSS.
    pub promoter_downstream: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        AnnotationConfig { genes: 1000, promoter_upstream: 2000, promoter_downstream: 500, seed: 7 }
    }
}

/// The annotation schema: `annType` (gene/promoter/enhancer) + `name`.
pub fn annotation_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("annType", ValueType::Str),
        Attribute::new("name", ValueType::Str),
    ])
    .expect("annotation schema attributes are valid")
}

/// A generated gene with its derived promoter.
#[derive(Debug, Clone)]
pub struct Gene {
    /// Gene symbol (synthetic).
    pub name: String,
    /// Chromosome.
    pub chrom: nggc_gdm::Chrom,
    /// Gene body.
    pub body: (u64, u64),
    /// Promoter region.
    pub promoter: (u64, u64),
    /// Strand.
    pub strand: Strand,
}

/// Generate genes spread genome-proportionally; returns the gene list for
/// ground-truth use by the case studies.
pub fn generate_genes(genome: &Genome, config: &AnnotationConfig) -> Vec<Gene> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut genes = Vec::with_capacity(config.genes);
    for i in 0..config.genes {
        // Even spacing with jitter keeps genes collision-light and spread
        // like real gene deserts/clusters are not — adequate for
        // cardinality-shaped experiments.
        let slot = genome.total_len() / config.genes.max(1) as u64;
        let base = slot * i as u64 + rng.gen_range(0..slot.max(1)) / 2;
        let (chrom, offset) = genome.locate(base.min(genome.total_len() - 1));
        let chrom_len = genome.len_of(&chrom).expect("chrom exists");
        let strand = if rng.gen_bool(0.5) { Strand::Pos } else { Strand::Neg };
        let body_len = rng.gen_range(2_000..50_000u64).min(chrom_len / 2).max(1000);
        let start = offset.min(chrom_len.saturating_sub(body_len + 1));
        let end = start + body_len;
        let tss = if strand == Strand::Neg { end } else { start };
        let prom_left = tss.saturating_sub(match strand {
            Strand::Neg => config.promoter_downstream,
            _ => config.promoter_upstream,
        });
        let prom_right = (tss
            + match strand {
                Strand::Neg => config.promoter_upstream,
                _ => config.promoter_downstream,
            })
        .min(chrom_len);
        genes.push(Gene {
            name: format!("GENE{i:05}"),
            chrom,
            body: (start, end),
            promoter: (prom_left, prom_right),
            strand,
        });
    }
    genes
}

/// Build the ANNOTATIONS dataset (one sample holding genes + promoters),
/// mirroring the single UCSC reference sample of the paper's example.
pub fn generate_annotations(genome: &Genome, config: &AnnotationConfig) -> (Dataset, Vec<Gene>) {
    let genes = generate_genes(genome, config);
    let mut regions = Vec::with_capacity(genes.len() * 2);
    for g in &genes {
        regions.push(
            GRegion::new(g.chrom.as_str(), g.body.0, g.body.1, g.strand)
                .with_values(vec![Value::Str("gene".into()), Value::Str(g.name.clone())]),
        );
        regions.push(
            GRegion::new(g.chrom.as_str(), g.promoter.0, g.promoter.1, g.strand)
                .with_values(vec![Value::Str("promoter".into()), Value::Str(g.name.clone())]),
        );
    }
    let mut ds = Dataset::new("ANNOTATIONS", annotation_schema());
    let sample = Sample::new("ucsc_synthetic", "ANNOTATIONS").with_regions(regions).with_metadata(
        Metadata::from_pairs([("source", "synthetic-ucsc"), ("assembly", "synth-hg")]),
    );
    ds.add_sample_unchecked(sample);
    (ds, genes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promoter_flanks_tss_by_strand() {
        let genome = Genome::toy(1, 10_000_000);
        let config = AnnotationConfig { genes: 50, ..Default::default() };
        let genes = generate_genes(&genome, &config);
        for g in &genes {
            match g.strand {
                Strand::Pos | Strand::Unstranded => {
                    assert_eq!(g.promoter.0, g.body.0.saturating_sub(2000));
                    assert_eq!(g.promoter.1, g.body.0 + 500);
                }
                Strand::Neg => {
                    assert_eq!(g.promoter.0, g.body.1.saturating_sub(500));
                    assert_eq!(g.promoter.1, (g.body.1 + 2000).min(10_000_000));
                }
            }
        }
    }

    #[test]
    fn dataset_has_two_regions_per_gene() {
        let genome = Genome::human(0.001);
        let (ds, genes) =
            generate_annotations(&genome, &AnnotationConfig { genes: 100, ..Default::default() });
        assert_eq!(ds.region_count(), 200);
        assert_eq!(genes.len(), 100);
        ds.validate().unwrap();
        let promoters = ds.samples[0]
            .regions
            .iter()
            .filter(|r| r.values[0] == Value::Str("promoter".into()))
            .count();
        assert_eq!(promoters, 100);
    }

    #[test]
    fn deterministic() {
        let genome = Genome::toy(2, 1_000_000);
        let c = AnnotationConfig { genes: 10, ..Default::default() };
        let a = generate_genes(&genome, &c);
        let b = generate_genes(&genome, &c);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[3].body, b[3].body);
    }
}
