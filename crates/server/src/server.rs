//! The serve loop: accept connections, admit queries, execute them on
//! one shared engine, reply with typed results.
//!
//! One [`Server`] owns a shared [`Repository`] (so concurrent clients
//! hit the same `Arc<Dataset>` cache and single-flight cold loads) and
//! one [`ExecContext`] worker pool. Each connection gets a thread;
//! each `Query` request passes the [`Admission`] gate, carves its
//! governor budget out of the server [`MemoryPool`], and executes under
//! its own [`QueryGovernor`] and trace id. Shutdown stops accepting,
//! refuses new queries, drains in-flight ones, and cancels stragglers
//! through their `CancelToken`s after a grace period.

use crate::admission::{Admission, AdmitError, MemoryPool};
use crate::protocol::{
    encode_frame, read_frame_timed, write_frame, ClientRequest, FrameRead, OutputSummary,
    ServeErrorKind, ServeStats, ServerReply, MAX_FRAME_BYTES,
};
use nggc_core::{
    execute_governed, CacheBudget, CacheOutcome, DatasetProvider, ExecOptions, GmqlError,
    GovernorLimits, LogicalPlan, QueryGovernor, ResultCache,
};
use nggc_engine::{CancelToken, ExecContext};
use nggc_gdm::Dataset;
use nggc_repository::{RepoError, Repository};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How the serve loop paces its non-blocking accept poll.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Grace period after the drain timeout for cancelled queries to
/// unwind cooperatively.
const CANCEL_GRACE: Duration = Duration::from_secs(5);

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the shared execution pool.
    pub workers: usize,
    /// Queries allowed to execute concurrently.
    pub max_inflight: u64,
    /// Queries allowed to wait for a slot before rejection kicks in.
    pub max_queue: u64,
    /// Server-wide memory pool from which per-query governor budgets
    /// are carved.
    pub mem_pool_bytes: u64,
    /// Deadline applied to queries that do not request their own.
    pub default_timeout: Option<Duration>,
    /// Back-off hint attached to capacity rejections.
    pub retry_after: Duration,
    /// How long shutdown waits for in-flight queries before cancelling
    /// them.
    pub drain_timeout: Duration,
    /// Arm the flight recorder for requests slower than this.
    pub slow_query: Option<Duration>,
    /// Where flight records are appended (JSON lines).
    pub flight_path: Option<PathBuf>,
    /// Byte budget of the query result cache (0 disables it). Cached
    /// bytes are reserved lazily from the memory pool and yielded back
    /// (by evicting entries) whenever queries need the headroom.
    pub result_cache_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_inflight: 8,
            max_queue: 16,
            mem_pool_bytes: 1 << 30,
            default_timeout: None,
            retry_after: Duration::from_millis(100),
            drain_timeout: Duration::from_secs(10),
            slow_query: None,
            flight_path: None,
            result_cache_bytes: 128 << 20,
        }
    }
}

impl ServeConfig {
    /// Defaults with the flight recorder armed from the same
    /// environment variables the CLI honours (`NGGC_SLOW_QUERY_MS`,
    /// `NGGC_FLIGHT_RECORDER`).
    pub fn from_env() -> Result<ServeConfig, String> {
        let mut config = ServeConfig::default();
        if let Ok(v) = std::env::var("NGGC_SLOW_QUERY_MS") {
            let ms: u64 =
                v.parse().map_err(|_| format!("NGGC_SLOW_QUERY_MS: not a number: {v:?}"))?;
            config.slow_query = Some(Duration::from_millis(ms));
        }
        if let Ok(v) = std::env::var("NGGC_FLIGHT_RECORDER") {
            config.flight_path = Some(PathBuf::from(v));
        }
        Ok(config)
    }

    /// The governor budget carved for a query that did not request one:
    /// an even share of the pool across the in-flight cap, so a full
    /// server of default queries exactly exhausts the pool.
    pub fn default_query_budget(&self) -> u64 {
        (self.mem_pool_bytes / self.max_inflight.max(1)).max(1)
    }
}

/// Shared server state: one per [`Server`], referenced by every
/// connection thread and by [`ServerHandle`]s.
pub struct ServerShared {
    repo: Repository,
    ctx: ExecContext,
    admission: Admission,
    mem_pool: Arc<MemoryPool>,
    /// Plan-keyed result cache shared by every connection; `None` when
    /// disabled ([`ServeConfig::result_cache_bytes`] = 0).
    result_cache: Option<ResultCache>,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Cancel tokens of currently executing queries, for
    /// shutdown-after-drain-timeout cancellation.
    active: Mutex<HashMap<u64, CancelToken>>,
    next_request: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    /// Span sink for the flight recorder (None when unarmed). Shared by
    /// all requests; per-request dumps filter by trace id.
    collector: Option<Arc<nggc_obs::MemorySubscriber>>,
}

/// Control handle for a running server: trigger shutdown, observe
/// admission state. Cheap to clone.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting connections, refuse new
    /// queries, release queued waiters. In-flight queries keep running
    /// until they finish or the drain timeout cancels them.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.admission.begin_shutdown();
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The admission gate (tests and maintenance tooling can pin
    /// capacity through [`Admission::try_admit`]).
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// The server memory pool.
    pub fn memory_pool(&self) -> &MemoryPool {
        &self.shared.mem_pool
    }

    /// The query result cache, when enabled.
    pub fn result_cache(&self) -> Option<&ResultCache> {
        self.shared.result_cache.as_ref()
    }
}

/// [`CacheBudget`] adapter: cache bytes are carved from the server-wide
/// memory pool with the raw (non-RAII) reservation API, so cached
/// results and running queries compete for the same budget.
struct PoolBudget {
    pool: Arc<MemoryPool>,
}

impl CacheBudget for PoolBudget {
    fn reserve(&self, bytes: u64) -> bool {
        self.pool.reserve_raw(bytes)
    }
    fn release(&self, bytes: u64) {
        self.pool.release_raw(bytes);
    }
}

/// A bound, not-yet-running query server. Call [`Server::run`] to
/// serve; it returns after a [`ServerHandle::shutdown`] completes its
/// drain.
pub struct Server {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and prepare shared state.
    pub fn bind(addr: &str, repo: Repository, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let collector = if config.flight_path.is_some() || config.slow_query.is_some() {
            let c = Arc::new(nggc_obs::MemorySubscriber::default());
            nggc_obs::add_subscriber(c.clone());
            Some(c)
        } else {
            None
        };
        let mem_pool = Arc::new(MemoryPool::new(config.mem_pool_bytes));
        let result_cache = (config.result_cache_bytes > 0).then(|| {
            ResultCache::with_budget(
                // The cache can never hold more than the pool anyway.
                config.result_cache_bytes.min(config.mem_pool_bytes),
                Arc::new(PoolBudget { pool: Arc::clone(&mem_pool) }),
            )
        });
        let shared = Arc::new(ServerShared {
            repo,
            ctx: ExecContext::with_workers(config.workers),
            admission: Admission::new(config.max_inflight, config.max_queue, config.retry_after),
            mem_pool,
            result_cache,
            config,
            shutdown: AtomicBool::new(false),
            active: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            collector,
        });
        Ok(Server { listener, shared })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve until shutdown, then drain and return. In-flight queries
    /// get [`ServeConfig::drain_timeout`] to finish; stragglers are
    /// cancelled through their governor tokens and given a further
    /// grace period before the method returns anyway.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    nggc_obs::global().counter("nggc_serve_connections_total").inc();
                    let shared = Arc::clone(&self.shared);
                    let handle = std::thread::Builder::new()
                        .name("nggc-serve-conn".into())
                        .spawn(move || handle_connection(stream, shared))
                        .expect("failed to spawn connection thread");
                    conns.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Drain: admission already refuses new work (the shutdown
        // trigger flipped it); wait for in-flight queries, then cancel
        // whatever is still running.
        self.shared.admission.begin_shutdown();
        if !self.shared.admission.await_drain(self.shared.config.drain_timeout) {
            let active = self.shared.active.lock().unwrap_or_else(|p| p.into_inner());
            for token in active.values() {
                token.cancel();
            }
            drop(active);
            self.shared.admission.await_drain(CANCEL_GRACE);
        }
        // Connection threads notice shutdown within one read poll.
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Serve one connection: a request/reply loop that exits on EOF, IO
/// error, or shutdown.
fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame_timed(&mut reader) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        let reply = match serde_json::from_slice::<ClientRequest>(&frame) {
            Ok(ClientRequest::Query { text, timeout_ms, max_memory, head, no_cache }) => {
                // The admission permit and memory reservation live until
                // this scope ends — i.e. until after the reply is
                // written — so drain never completes while a client is
                // still owed bytes.
                let reply = run_query(&shared, &text, timeout_ms, max_memory, head, no_cache);
                if send_reply(&mut writer, reply).is_err() {
                    return;
                }
                continue;
            }
            Ok(ClientRequest::Ping) => ServerReply::Pong {
                inflight: shared.admission.inflight(),
                queued: shared.admission.queued(),
            },
            Ok(ClientRequest::Stats) => {
                let cache = shared.result_cache.as_ref();
                let cs = cache.map(|c| c.stats()).unwrap_or_default();
                ServerReply::Stats(ServeStats {
                    inflight: shared.admission.inflight(),
                    queued: shared.admission.queued(),
                    requests: shared.requests.load(Ordering::Relaxed),
                    rejected: shared.rejected.load(Ordering::Relaxed),
                    mem_reserved: shared.mem_pool.reserved(),
                    mem_capacity: shared.mem_pool.capacity(),
                    result_cache_hits: cs.hits,
                    result_cache_misses: cs.misses,
                    result_cache_coalesced: cs.coalesced,
                    result_cache_evictions: cs.evictions,
                    result_cache_invalidations: cs.invalidations,
                    result_cache_entries: cs.entries,
                    result_cache_bytes: cs.bytes,
                    result_cache_capacity: cache.map(|c| c.capacity_bytes()).unwrap_or(0),
                })
            }
            Err(e) => ServerReply::Error {
                kind: ServeErrorKind::BadRequest,
                message: format!("malformed request: {e}"),
                retry_after_ms: None,
            },
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// Write one reply frame. An oversized reply — a `Result` whose head
/// rows outgrow [`MAX_FRAME_BYTES`] — degrades into a typed in-band
/// [`ServeErrorKind::ResponseTooLarge`] with the head rows truncated
/// away, so the client keeps a live socket and a real diagnosis instead
/// of a torn-down connection mid-exchange.
fn send_reply(writer: &mut (impl io::Write + ?Sized), reply: ServerReply) -> io::Result<()> {
    let frame = match encode_frame(&reply) {
        Ok(f) => f,
        Err(too_large) => {
            nggc_obs::global().counter("nggc_serve_oversized_replies_total").inc();
            let detail = match &reply {
                ServerReply::Result { outputs, .. } => {
                    let regions: usize = outputs.iter().map(|o| o.regions).sum();
                    format!(
                        "{} outputs totalling {} regions (head rows omitted)",
                        outputs.len(),
                        regions
                    )
                }
                _ => "reply omitted".to_owned(),
            };
            let fallback = ServerReply::Error {
                kind: ServeErrorKind::ResponseTooLarge,
                message: format!(
                    "reply of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame cap; {detail} — \
                     retry with a smaller head",
                    too_large.bytes
                ),
                retry_after_ms: None,
            };
            encode_frame(&fallback).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "fallback reply oversized")
            })?
        }
    };
    writer.write_all(&frame)?;
    writer.flush()
}

/// GMQL source provider for serve requests: shared-`Arc` loads from the
/// server repository, pre-checked against the request's governor (same
/// discipline as the CLI's `RepoProvider::governed`).
struct ServeProvider<'a> {
    repo: &'a Repository,
    governor: &'a QueryGovernor,
}

impl DatasetProvider for ServeProvider<'_> {
    fn load(&self, name: &str) -> Result<Dataset, GmqlError> {
        self.load_shared(name).map(|d| (*d).clone())
    }

    fn load_shared(&self, name: &str) -> Result<Arc<Dataset>, GmqlError> {
        let node = format!("LOAD {name}");
        self.governor.check(&node)?;
        if let Some(budget) = self.governor.remaining_memory() {
            return match self.repo.load_bounded(name, budget) {
                Ok(d) => Ok(d),
                Err(RepoError::Budget { estimated, .. }) => {
                    Err(self.governor.refuse_allocation(&node, estimated))
                }
                Err(e) => Err(GmqlError::runtime(e.to_string())),
            };
        }
        self.repo.load(name).map_err(|e| GmqlError::runtime(e.to_string()))
    }

    fn load_pruned(
        &self,
        name: &str,
        spec: &nggc_core::ScanSpec,
    ) -> Result<Arc<Dataset>, GmqlError> {
        let node = format!("LOAD {name}");
        self.governor.check(&node)?;
        if let Some(budget) = self.governor.remaining_memory() {
            // Same conservative pre-check as `load_bounded`: the catalog
            // estimate covers the full dataset, a ceiling on what any
            // pruned read can bring into memory.
            if let Some(entry) = self.repo.entry(name) {
                let estimated = entry.stats.bytes as u64;
                if estimated > budget {
                    return Err(self.governor.refuse_allocation(&node, estimated));
                }
            }
        }
        let opts = nggc_repository::ScanOptions {
            chroms: spec.chroms.clone(),
            columns: spec.columns.clone(),
        };
        self.repo.load_pruned(name, &opts).map_err(|e| GmqlError::runtime(e.to_string()))
    }
}

/// Admit, budget, execute (or answer from the result cache), and
/// summarise one query request.
///
/// Parse → compile → optimize happen before the cache is consulted so
/// the cache key is the canonical fingerprint of the *optimized* plan:
/// two spellings of the same query collide on purpose. Hits and
/// coalesced waits skip admission and the memory pool entirely — the
/// whole point of the cache — but never during drain.
fn run_query(
    shared: &ServerShared,
    text: &str,
    timeout_ms: Option<u64>,
    max_memory: Option<u64>,
    head: usize,
    no_cache: bool,
) -> ServerReply {
    let reg = nggc_obs::global();
    reg.counter("nggc_serve_requests_total").inc();
    shared.requests.fetch_add(1, Ordering::Relaxed);

    // A draining server refuses new work before the cache gets a say.
    if shared.admission.is_shutting_down() {
        return reject(shared, ServeErrorKind::ShuttingDown, "server is draining".into());
    }

    let statements = match nggc_core::parse(text) {
        Ok(s) => s,
        Err(e) => {
            return ServerReply::Error {
                kind: ServeErrorKind::Parse,
                message: e.to_string(),
                retry_after_ms: None,
            };
        }
    };
    let plan = match LogicalPlan::compile(&statements, &|name| shared.repo.schema_of(name)) {
        Ok(p) => p,
        Err(e) => {
            return ServerReply::Error {
                kind: ServeErrorKind::Runtime,
                message: e.to_string(),
                retry_after_ms: None,
            };
        }
    };
    // Optimize here (execution below runs with `optimize: false`) and
    // mirror the counters exec.rs would have bumped, so `stats` output
    // is identical whichever side ran the optimizer.
    let (plan, report) = nggc_core::optimize(&plan);
    reg.counter("nggc_exec_optimizer_selects_fused_total").add(report.selects_fused as u64);
    reg.counter("nggc_exec_optimizer_nodes_deduplicated_total")
        .add(report.nodes_deduplicated as u64);

    let cache = if no_cache { None } else { shared.result_cache.as_ref() };
    let Some(cache) = cache else {
        return match execute_admitted(shared, text, &plan, timeout_ms, max_memory) {
            Ok(done) => result_reply(&done.outputs, head, done.trace_id, done.elapsed, false),
            Err(reply) => reply,
        };
    };

    let key = nggc_core::fingerprint(&plan).0;
    let sources = nggc_core::source_datasets(&plan);
    let t0 = Instant::now();
    // The leader's identity (trace id, wall time) escapes the closure so
    // a Miss replies with the execution's own trace, not a synthetic one.
    let mut leader: Option<(u64, Duration)> = None;
    let computed =
        cache.get_or_compute(key, &sources, &|name| shared.repo.generation(name), &mut || {
            execute_admitted(shared, text, &plan, timeout_ms, max_memory).map(|done| {
                leader = Some((done.trace_id, done.elapsed));
                done.outputs
            })
        });
    match computed {
        Ok((outputs, outcome)) => {
            let (trace_id, elapsed, cached) = match (outcome, leader) {
                (CacheOutcome::Miss, Some((trace_id, elapsed))) => (trace_id, elapsed, false),
                _ => {
                    // Hit or coalesced: no execution ran on behalf of
                    // this request. Give the reply its own trace id and
                    // record the (cheap) lookup as the request time.
                    let elapsed = t0.elapsed();
                    let tc = nggc_obs::TraceContext::new();
                    let trace_id = tc.trace_id;
                    let _scope = tc.enter();
                    let mut span = nggc_obs::span("serve.request");
                    span.field("trace_id", trace_id).field("outcome", outcome.name());
                    reg.histogram("nggc_serve_request_ns").record_duration(elapsed);
                    (trace_id, elapsed, true)
                }
            };
            result_reply(&outputs, head, trace_id, elapsed, cached)
        }
        Err(reply) => reply,
    }
}

/// Typed reject: counts, stamps a load-scaled back-off hint on the
/// kinds a client should retry, and builds the error reply.
fn reject(shared: &ServerShared, kind: ServeErrorKind, message: String) -> ServerReply {
    nggc_obs::global().counter("nggc_serve_rejected_total").inc();
    shared.rejected.fetch_add(1, Ordering::Relaxed);
    let retry = matches!(kind, ServeErrorKind::Rejected | ServeErrorKind::PoolExhausted)
        .then(|| shared.admission.retry_after().as_millis() as u64);
    ServerReply::Error { kind, message, retry_after_ms: retry }
}

/// A query that actually executed (cache miss or cache bypass).
struct ExecutedQuery {
    outputs: HashMap<String, Dataset>,
    trace_id: u64,
    elapsed: Duration,
}

/// The admitted execution path: concurrency gate → memory gate (with
/// the result cache yielding bytes back to the pool under pressure) →
/// governed execution of an already-optimized plan. Errors come back as
/// ready-to-send replies.
fn execute_admitted(
    shared: &ServerShared,
    text: &str,
    plan: &LogicalPlan,
    timeout_ms: Option<u64>,
    max_memory: Option<u64>,
) -> Result<ExecutedQuery, ServerReply> {
    let reg = nggc_obs::global();

    // Gate 1: concurrency.
    let _permit = match shared.admission.admit() {
        Ok(p) => p,
        Err(AdmitError::QueueFull) => {
            return Err(reject(
                shared,
                ServeErrorKind::Rejected,
                "server at capacity: in-flight cap and queue are full".into(),
            ));
        }
        Err(AdmitError::ShuttingDown) => {
            return Err(reject(shared, ServeErrorKind::ShuttingDown, "server is draining".into()));
        }
    };

    // Gate 2: memory. Every query gets a budget carved from the server
    // pool — its own request, or an even share of the pool. Queries
    // outrank cached results: on pressure the cache is shrunk by the
    // missing amount and the reservation retried once.
    let budget = max_memory.unwrap_or_else(|| shared.config.default_query_budget());
    let reservation = shared.mem_pool.reserve(budget).or_else(|| {
        let cache = shared.result_cache.as_ref()?;
        (cache.shrink(budget) > 0).then(|| shared.mem_pool.reserve(budget)).flatten()
    });
    let _reservation = match reservation {
        Some(r) => r,
        None => {
            return Err(reject(
                shared,
                ServeErrorKind::PoolExhausted,
                format!(
                    "memory pool exhausted: {budget} B requested, {} of {} B reserved",
                    shared.mem_pool.reserved(),
                    shared.mem_pool.capacity()
                ),
            ));
        }
    };

    // Every executed request is its own trace; spans below carry its id.
    let tc = nggc_obs::TraceContext::new();
    let trace_id = tc.trace_id;
    let _scope = tc.enter();
    let mut span = nggc_obs::span("serve.request");
    span.field("trace_id", trace_id).field("budget_bytes", budget);

    let timeout = timeout_ms.map(Duration::from_millis).or(shared.config.default_timeout);
    let governor = QueryGovernor::new(GovernorLimits { timeout, max_memory: Some(budget) });

    // Register for shutdown cancellation while executing.
    let request_id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    shared
        .active
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(request_id, governor.cancel_token());
    let _active_guard = ActiveGuard { shared, request_id };

    let t0 = Instant::now();
    let provider = ServeProvider { repo: &shared.repo, governor: &governor };
    // The plan was optimized (and its counters mirrored) in run_query.
    let opts = ExecOptions { optimize: false, ..ExecOptions::default() };
    let result = execute_governed(plan, &provider, &shared.ctx, &opts, Some(&governor));
    let elapsed = t0.elapsed();
    reg.histogram("nggc_serve_request_ns").record_duration(elapsed);
    governor.export_peak();

    let (result, outcome) = match result {
        Ok((outputs, _metrics)) => (Ok(ExecutedQuery { outputs, trace_id, elapsed }), None),
        Err(e) => {
            let kind = match &e {
                GmqlError::DeadlineExceeded { .. } => ServeErrorKind::DeadlineExceeded,
                GmqlError::Cancelled { .. } => ServeErrorKind::Cancelled,
                GmqlError::MemoryExhausted { .. } => ServeErrorKind::MemoryExhausted,
                _ => ServeErrorKind::Runtime,
            };
            let reply = ServerReply::Error { kind, message: e.to_string(), retry_after_ms: None };
            (Err(reply), Some(kind))
        }
    };
    span.field(
        "outcome",
        match outcome {
            None => "ok",
            Some(ServeErrorKind::DeadlineExceeded) => "deadline",
            Some(ServeErrorKind::Cancelled) => "cancelled",
            Some(ServeErrorKind::MemoryExhausted) => "memory",
            Some(_) => "error",
        },
    );
    drop(span);
    maybe_record_flight(shared, text, trace_id, elapsed, outcome, &governor);
    result
}

/// Build the `Result` reply: outputs sorted by name, head rows bounded
/// by the request.
fn result_reply(
    outputs: &HashMap<String, Dataset>,
    head: usize,
    trace_id: u64,
    elapsed: Duration,
    cached: bool,
) -> ServerReply {
    let mut names: Vec<&String> = outputs.keys().collect();
    names.sort();
    ServerReply::Result {
        trace_id,
        elapsed_us: elapsed.as_micros() as u64,
        outputs: names.iter().map(|n| summarize(n, &outputs[*n], head)).collect(),
        cached,
    }
}

fn summarize(name: &str, ds: &Dataset, head: usize) -> OutputSummary {
    let mut rows = Vec::new();
    'outer: for s in &ds.samples {
        for r in &s.regions {
            if rows.len() >= head {
                break 'outer;
            }
            rows.push(format!("{}\t{r}", s.name));
        }
    }
    OutputSummary {
        name: name.to_owned(),
        samples: ds.sample_count(),
        regions: ds.region_count(),
        head: rows,
    }
}

/// Removes this request's cancel token from the active table when the
/// request ends, however it ends.
struct ActiveGuard<'a> {
    shared: &'a ServerShared,
    request_id: u64,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.shared.active.lock().unwrap_or_else(|p| p.into_inner()).remove(&self.request_id);
    }
}

/// One JSON line in the serve flight-recorder dump.
#[derive(Serialize)]
struct ServeFlightRecord {
    kind: String,
    outcome: String,
    query: String,
    elapsed_us: u64,
    trace_id: u64,
    governor_charged_bytes: u64,
    governor_peak_bytes: u64,
    spans: Vec<FlightSpan>,
}

#[derive(Serialize)]
struct FlightSpan {
    name: String,
    wall_us: u64,
    fields: Vec<(String, String)>,
}

/// Dump this request's trace when the recorder is armed and the request
/// was slow or tripped its governor.
fn maybe_record_flight(
    shared: &ServerShared,
    query: &str,
    trace_id: u64,
    elapsed: Duration,
    outcome: Option<ServeErrorKind>,
    governor: &QueryGovernor,
) {
    let Some(path) = &shared.config.flight_path else {
        return;
    };
    let tripped = matches!(
        outcome,
        Some(
            ServeErrorKind::DeadlineExceeded
                | ServeErrorKind::Cancelled
                | ServeErrorKind::MemoryExhausted
        )
    );
    let slow = shared.config.slow_query.is_some_and(|t| elapsed >= t);
    if !tripped && !slow {
        return;
    }
    let outcome_name = match outcome {
        None => "slow",
        Some(ServeErrorKind::DeadlineExceeded) => "deadline",
        Some(ServeErrorKind::Cancelled) => "cancelled",
        Some(ServeErrorKind::MemoryExhausted) => "memory",
        Some(_) => "error",
    };
    // One subscriber serves every request; this request's spans are the
    // ones stamped with its trace id.
    let spans = shared
        .collector
        .as_ref()
        .map(|c| {
            c.records()
                .into_iter()
                .filter(|r| r.trace_id == trace_id)
                .map(|r| FlightSpan {
                    name: r.name,
                    wall_us: r.wall.as_micros() as u64,
                    fields: r.fields,
                })
                .collect()
        })
        .unwrap_or_default();
    let record = ServeFlightRecord {
        kind: "nggc_serve_flight_record".to_owned(),
        outcome: outcome_name.to_owned(),
        query: query.to_owned(),
        elapsed_us: elapsed.as_micros() as u64,
        trace_id,
        governor_charged_bytes: governor.charged(),
        governor_peak_bytes: governor.mem_peak(),
        spans,
    };
    let Ok(line) = serde_json::to_string(&record) else {
        return;
    };
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{line}");
    }
    nggc_obs::global().counter("nggc_serve_flight_records_total").inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_frame;

    #[test]
    fn oversized_reply_degrades_to_typed_error_on_a_live_connection() {
        // A Result whose head rows outgrow the frame cap must reach the
        // client as a well-formed ResponseTooLarge error frame — not
        // tear down the socket mid-exchange.
        let huge = ServerReply::Result {
            trace_id: 7,
            elapsed_us: 1,
            outputs: vec![crate::protocol::OutputSummary {
                name: "R".into(),
                samples: 3,
                regions: 9,
                head: vec!["x".repeat(MAX_FRAME_BYTES as usize + 1)],
            }],
            cached: false,
        };
        let mut wire = Vec::new();
        send_reply(&mut wire, huge).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let body = read_frame(&mut cursor).unwrap().unwrap();
        match serde_json::from_slice::<ServerReply>(&body).unwrap() {
            ServerReply::Error { kind, message, retry_after_ms } => {
                assert_eq!(kind, ServeErrorKind::ResponseTooLarge);
                assert!(message.contains("smaller head"), "actionable hint: {message}");
                assert!(message.contains("9 regions"), "summary survives: {message}");
                assert_eq!(retry_after_ms, None);
            }
            other => panic!("expected ResponseTooLarge, got {other:?}"),
        }
        // Nothing left on the wire: exactly one frame was written.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }
}
