//! The serve loop: accept connections, admit queries, execute them on
//! one shared engine, reply with typed results.
//!
//! One [`Server`] owns a shared [`Repository`] (so concurrent clients
//! hit the same `Arc<Dataset>` cache and single-flight cold loads) and
//! one [`ExecContext`] worker pool. Each connection gets a thread;
//! each `Query` request passes the [`Admission`] gate, carves its
//! governor budget out of the server [`MemoryPool`], and executes under
//! its own [`QueryGovernor`] and trace id. Shutdown stops accepting,
//! refuses new queries, drains in-flight ones, and cancels stragglers
//! through their `CancelToken`s after a grace period.

use crate::admission::{Admission, AdmitError, MemoryPool};
use crate::protocol::{
    read_frame_timed, write_frame, ClientRequest, FrameRead, OutputSummary, ServeErrorKind,
    ServeStats, ServerReply,
};
use nggc_core::{
    execute_governed, DatasetProvider, ExecOptions, GmqlError, GovernorLimits, LogicalPlan,
    QueryGovernor,
};
use nggc_engine::{CancelToken, ExecContext};
use nggc_gdm::Dataset;
use nggc_repository::{RepoError, Repository};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// How the serve loop paces its non-blocking accept poll.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Grace period after the drain timeout for cancelled queries to
/// unwind cooperatively.
const CANCEL_GRACE: Duration = Duration::from_secs(5);

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the shared execution pool.
    pub workers: usize,
    /// Queries allowed to execute concurrently.
    pub max_inflight: u64,
    /// Queries allowed to wait for a slot before rejection kicks in.
    pub max_queue: u64,
    /// Server-wide memory pool from which per-query governor budgets
    /// are carved.
    pub mem_pool_bytes: u64,
    /// Deadline applied to queries that do not request their own.
    pub default_timeout: Option<Duration>,
    /// Back-off hint attached to capacity rejections.
    pub retry_after: Duration,
    /// How long shutdown waits for in-flight queries before cancelling
    /// them.
    pub drain_timeout: Duration,
    /// Arm the flight recorder for requests slower than this.
    pub slow_query: Option<Duration>,
    /// Where flight records are appended (JSON lines).
    pub flight_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_inflight: 8,
            max_queue: 16,
            mem_pool_bytes: 1 << 30,
            default_timeout: None,
            retry_after: Duration::from_millis(100),
            drain_timeout: Duration::from_secs(10),
            slow_query: None,
            flight_path: None,
        }
    }
}

impl ServeConfig {
    /// Defaults with the flight recorder armed from the same
    /// environment variables the CLI honours (`NGGC_SLOW_QUERY_MS`,
    /// `NGGC_FLIGHT_RECORDER`).
    pub fn from_env() -> Result<ServeConfig, String> {
        let mut config = ServeConfig::default();
        if let Ok(v) = std::env::var("NGGC_SLOW_QUERY_MS") {
            let ms: u64 =
                v.parse().map_err(|_| format!("NGGC_SLOW_QUERY_MS: not a number: {v:?}"))?;
            config.slow_query = Some(Duration::from_millis(ms));
        }
        if let Ok(v) = std::env::var("NGGC_FLIGHT_RECORDER") {
            config.flight_path = Some(PathBuf::from(v));
        }
        Ok(config)
    }

    /// The governor budget carved for a query that did not request one:
    /// an even share of the pool across the in-flight cap, so a full
    /// server of default queries exactly exhausts the pool.
    pub fn default_query_budget(&self) -> u64 {
        (self.mem_pool_bytes / self.max_inflight.max(1)).max(1)
    }
}

/// Shared server state: one per [`Server`], referenced by every
/// connection thread and by [`ServerHandle`]s.
pub struct ServerShared {
    repo: Repository,
    ctx: ExecContext,
    admission: Admission,
    mem_pool: MemoryPool,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Cancel tokens of currently executing queries, for
    /// shutdown-after-drain-timeout cancellation.
    active: Mutex<HashMap<u64, CancelToken>>,
    next_request: AtomicU64,
    requests: AtomicU64,
    rejected: AtomicU64,
    /// Span sink for the flight recorder (None when unarmed). Shared by
    /// all requests; per-request dumps filter by trace id.
    collector: Option<Arc<nggc_obs::MemorySubscriber>>,
}

/// Control handle for a running server: trigger shutdown, observe
/// admission state. Cheap to clone.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting connections, refuse new
    /// queries, release queued waiters. In-flight queries keep running
    /// until they finish or the drain timeout cancels them.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.admission.begin_shutdown();
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The admission gate (tests and maintenance tooling can pin
    /// capacity through [`Admission::try_admit`]).
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// The server memory pool.
    pub fn memory_pool(&self) -> &MemoryPool {
        &self.shared.mem_pool
    }
}

/// A bound, not-yet-running query server. Call [`Server::run`] to
/// serve; it returns after a [`ServerHandle::shutdown`] completes its
/// drain.
pub struct Server {
    listener: TcpListener,
    shared: Arc<ServerShared>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and prepare shared state.
    pub fn bind(addr: &str, repo: Repository, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let collector = if config.flight_path.is_some() || config.slow_query.is_some() {
            let c = Arc::new(nggc_obs::MemorySubscriber::default());
            nggc_obs::add_subscriber(c.clone());
            Some(c)
        } else {
            None
        };
        let shared = Arc::new(ServerShared {
            repo,
            ctx: ExecContext::with_workers(config.workers),
            admission: Admission::new(config.max_inflight, config.max_queue, config.retry_after),
            mem_pool: MemoryPool::new(config.mem_pool_bytes),
            config,
            shutdown: AtomicBool::new(false),
            active: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            collector,
        });
        Ok(Server { listener, shared })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve until shutdown, then drain and return. In-flight queries
    /// get [`ServeConfig::drain_timeout`] to finish; stragglers are
    /// cancelled through their governor tokens and given a further
    /// grace period before the method returns anyway.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    nggc_obs::global().counter("nggc_serve_connections_total").inc();
                    let shared = Arc::clone(&self.shared);
                    let handle = std::thread::Builder::new()
                        .name("nggc-serve-conn".into())
                        .spawn(move || handle_connection(stream, shared))
                        .expect("failed to spawn connection thread");
                    conns.push(handle);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Drain: admission already refuses new work (the shutdown
        // trigger flipped it); wait for in-flight queries, then cancel
        // whatever is still running.
        self.shared.admission.begin_shutdown();
        if !self.shared.admission.await_drain(self.shared.config.drain_timeout) {
            let active = self.shared.active.lock().unwrap_or_else(|p| p.into_inner());
            for token in active.values() {
                token.cancel();
            }
            drop(active);
            self.shared.admission.await_drain(CANCEL_GRACE);
        }
        // Connection threads notice shutdown within one read poll.
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Serve one connection: a request/reply loop that exits on EOF, IO
/// error, or shutdown.
fn handle_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame_timed(&mut reader) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        let reply = match serde_json::from_slice::<ClientRequest>(&frame) {
            Ok(ClientRequest::Query { text, timeout_ms, max_memory, head }) => {
                // The admission permit and memory reservation live until
                // this scope ends — i.e. until after the reply is
                // written — so drain never completes while a client is
                // still owed bytes.
                let reply = run_query(&shared, &text, timeout_ms, max_memory, head);
                if write_frame(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
            Ok(ClientRequest::Ping) => ServerReply::Pong {
                inflight: shared.admission.inflight(),
                queued: shared.admission.queued(),
            },
            Ok(ClientRequest::Stats) => ServerReply::Stats(ServeStats {
                inflight: shared.admission.inflight(),
                queued: shared.admission.queued(),
                requests: shared.requests.load(Ordering::Relaxed),
                rejected: shared.rejected.load(Ordering::Relaxed),
                mem_reserved: shared.mem_pool.reserved(),
                mem_capacity: shared.mem_pool.capacity(),
            }),
            Err(e) => ServerReply::Error {
                kind: ServeErrorKind::BadRequest,
                message: format!("malformed request: {e}"),
                retry_after_ms: None,
            },
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// GMQL source provider for serve requests: shared-`Arc` loads from the
/// server repository, pre-checked against the request's governor (same
/// discipline as the CLI's `RepoProvider::governed`).
struct ServeProvider<'a> {
    repo: &'a Repository,
    governor: &'a QueryGovernor,
}

impl DatasetProvider for ServeProvider<'_> {
    fn load(&self, name: &str) -> Result<Dataset, GmqlError> {
        self.load_shared(name).map(|d| (*d).clone())
    }

    fn load_shared(&self, name: &str) -> Result<Arc<Dataset>, GmqlError> {
        let node = format!("LOAD {name}");
        self.governor.check(&node)?;
        if let Some(budget) = self.governor.remaining_memory() {
            return match self.repo.load_bounded(name, budget) {
                Ok(d) => Ok(d),
                Err(RepoError::Budget { estimated, .. }) => {
                    Err(self.governor.refuse_allocation(&node, estimated))
                }
                Err(e) => Err(GmqlError::runtime(e.to_string())),
            };
        }
        self.repo.load(name).map_err(|e| GmqlError::runtime(e.to_string()))
    }
}

/// Admit, budget, execute, and summarise one query request.
fn run_query(
    shared: &ServerShared,
    text: &str,
    timeout_ms: Option<u64>,
    max_memory: Option<u64>,
    head: usize,
) -> ServerReply {
    let reg = nggc_obs::global();
    reg.counter("nggc_serve_requests_total").inc();
    shared.requests.fetch_add(1, Ordering::Relaxed);

    let reject = |shared: &ServerShared, kind: ServeErrorKind, message: String| {
        nggc_obs::global().counter("nggc_serve_rejected_total").inc();
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let retry = matches!(kind, ServeErrorKind::Rejected | ServeErrorKind::PoolExhausted)
            .then(|| shared.admission.retry_after().as_millis() as u64);
        ServerReply::Error { kind, message, retry_after_ms: retry }
    };

    // Gate 1: concurrency.
    let _permit = match shared.admission.admit() {
        Ok(p) => p,
        Err(AdmitError::QueueFull) => {
            return reject(
                shared,
                ServeErrorKind::Rejected,
                "server at capacity: in-flight cap and queue are full".into(),
            );
        }
        Err(AdmitError::ShuttingDown) => {
            return reject(shared, ServeErrorKind::ShuttingDown, "server is draining".into());
        }
    };

    // Gate 2: memory. Every query gets a budget carved from the server
    // pool — its own request, or an even share of the pool.
    let budget = max_memory.unwrap_or_else(|| shared.config.default_query_budget());
    let _reservation = match shared.mem_pool.reserve(budget) {
        Some(r) => r,
        None => {
            return reject(
                shared,
                ServeErrorKind::PoolExhausted,
                format!(
                    "memory pool exhausted: {budget} B requested, {} of {} B reserved",
                    shared.mem_pool.reserved(),
                    shared.mem_pool.capacity()
                ),
            );
        }
    };

    // Every request is its own trace; spans below here carry its id.
    let tc = nggc_obs::TraceContext::new();
    let trace_id = tc.trace_id;
    let _scope = tc.enter();
    let mut span = nggc_obs::span("serve.request");
    span.field("trace_id", trace_id).field("budget_bytes", budget);

    let timeout = timeout_ms.map(Duration::from_millis).or(shared.config.default_timeout);
    let governor = QueryGovernor::new(GovernorLimits { timeout, max_memory: Some(budget) });

    // Register for shutdown cancellation while executing.
    let request_id = shared.next_request.fetch_add(1, Ordering::Relaxed);
    shared
        .active
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(request_id, governor.cancel_token());
    let _active_guard = ActiveGuard { shared, request_id };

    let t0 = Instant::now();
    let result = parse_and_execute(shared, text, &governor);
    let elapsed = t0.elapsed();
    reg.histogram("nggc_serve_request_ns").record_duration(elapsed);
    governor.export_peak();

    let (reply, outcome) = match result {
        Ok(outputs) => {
            let mut names: Vec<&String> = outputs.keys().collect();
            names.sort();
            let summaries = names.iter().map(|n| summarize(n, &outputs[*n], head)).collect();
            let reply = ServerReply::Result {
                trace_id,
                elapsed_us: elapsed.as_micros() as u64,
                outputs: summaries,
            };
            (reply, None)
        }
        Err((kind, message)) => {
            let reply = ServerReply::Error { kind, message, retry_after_ms: None };
            (reply, Some(kind))
        }
    };
    span.field(
        "outcome",
        match outcome {
            None => "ok",
            Some(ServeErrorKind::DeadlineExceeded) => "deadline",
            Some(ServeErrorKind::Cancelled) => "cancelled",
            Some(ServeErrorKind::MemoryExhausted) => "memory",
            Some(_) => "error",
        },
    );
    drop(span);
    maybe_record_flight(shared, text, trace_id, elapsed, outcome, &governor);
    reply
}

/// Parse → compile → execute under the governor; errors are mapped to
/// wire kinds.
fn parse_and_execute(
    shared: &ServerShared,
    text: &str,
    governor: &QueryGovernor,
) -> Result<HashMap<String, Dataset>, (ServeErrorKind, String)> {
    let statements = nggc_core::parse(text).map_err(|e| (ServeErrorKind::Parse, e.to_string()))?;
    let plan = LogicalPlan::compile(&statements, &|name| shared.repo.schema_of(name))
        .map_err(|e| (ServeErrorKind::Runtime, e.to_string()))?;
    let provider = ServeProvider { repo: &shared.repo, governor };
    let opts = ExecOptions::default();
    match execute_governed(&plan, &provider, &shared.ctx, &opts, Some(governor)) {
        Ok((outputs, _metrics)) => Ok(outputs),
        Err(e) => {
            let kind = match &e {
                GmqlError::DeadlineExceeded { .. } => ServeErrorKind::DeadlineExceeded,
                GmqlError::Cancelled { .. } => ServeErrorKind::Cancelled,
                GmqlError::MemoryExhausted { .. } => ServeErrorKind::MemoryExhausted,
                _ => ServeErrorKind::Runtime,
            };
            Err((kind, e.to_string()))
        }
    }
}

fn summarize(name: &str, ds: &Dataset, head: usize) -> OutputSummary {
    let mut rows = Vec::new();
    'outer: for s in &ds.samples {
        for r in &s.regions {
            if rows.len() >= head {
                break 'outer;
            }
            rows.push(format!("{}\t{r}", s.name));
        }
    }
    OutputSummary {
        name: name.to_owned(),
        samples: ds.sample_count(),
        regions: ds.region_count(),
        head: rows,
    }
}

/// Removes this request's cancel token from the active table when the
/// request ends, however it ends.
struct ActiveGuard<'a> {
    shared: &'a ServerShared,
    request_id: u64,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.shared.active.lock().unwrap_or_else(|p| p.into_inner()).remove(&self.request_id);
    }
}

/// One JSON line in the serve flight-recorder dump.
#[derive(Serialize)]
struct ServeFlightRecord {
    kind: String,
    outcome: String,
    query: String,
    elapsed_us: u64,
    trace_id: u64,
    governor_charged_bytes: u64,
    governor_peak_bytes: u64,
    spans: Vec<FlightSpan>,
}

#[derive(Serialize)]
struct FlightSpan {
    name: String,
    wall_us: u64,
    fields: Vec<(String, String)>,
}

/// Dump this request's trace when the recorder is armed and the request
/// was slow or tripped its governor.
fn maybe_record_flight(
    shared: &ServerShared,
    query: &str,
    trace_id: u64,
    elapsed: Duration,
    outcome: Option<ServeErrorKind>,
    governor: &QueryGovernor,
) {
    let Some(path) = &shared.config.flight_path else {
        return;
    };
    let tripped = matches!(
        outcome,
        Some(
            ServeErrorKind::DeadlineExceeded
                | ServeErrorKind::Cancelled
                | ServeErrorKind::MemoryExhausted
        )
    );
    let slow = shared.config.slow_query.is_some_and(|t| elapsed >= t);
    if !tripped && !slow {
        return;
    }
    let outcome_name = match outcome {
        None => "slow",
        Some(ServeErrorKind::DeadlineExceeded) => "deadline",
        Some(ServeErrorKind::Cancelled) => "cancelled",
        Some(ServeErrorKind::MemoryExhausted) => "memory",
        Some(_) => "error",
    };
    // One subscriber serves every request; this request's spans are the
    // ones stamped with its trace id.
    let spans = shared
        .collector
        .as_ref()
        .map(|c| {
            c.records()
                .into_iter()
                .filter(|r| r.trace_id == trace_id)
                .map(|r| FlightSpan {
                    name: r.name,
                    wall_us: r.wall.as_micros() as u64,
                    fields: r.fields,
                })
                .collect()
        })
        .unwrap_or_default();
    let record = ServeFlightRecord {
        kind: "nggc_serve_flight_record".to_owned(),
        outcome: outcome_name.to_owned(),
        query: query.to_owned(),
        elapsed_us: elapsed.as_micros() as u64,
        trace_id,
        governor_charged_bytes: governor.charged(),
        governor_peak_bytes: governor.mem_peak(),
        spans,
    };
    let Ok(line) = serde_json::to_string(&record) else {
        return;
    };
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{line}");
    }
    nggc_obs::global().counter("nggc_serve_flight_records_total").inc();
}
