//! A blocking client for the serve protocol, used by `nggc client` and
//! the test suite.

use crate::protocol::{read_frame, write_frame, ClientRequest, ServerReply};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a running `nggc serve`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7781`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// [`Client::connect`] with a connect timeout.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> io::Result<Client> {
        let sock_addr = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, request: &ClientRequest) -> io::Result<ServerReply> {
        write_frame(&mut self.stream, request)?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        serde_json::from_slice(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Run a GMQL query with optional per-request limits.
    pub fn query(
        &mut self,
        text: &str,
        timeout_ms: Option<u64>,
        max_memory: Option<u64>,
        head: usize,
    ) -> io::Result<ServerReply> {
        self.query_full(text, timeout_ms, max_memory, head, false)
    }

    /// [`Client::query`] with explicit control over the server result
    /// cache: `no_cache` forces execution even when a cached result for
    /// the same plan exists.
    pub fn query_full(
        &mut self,
        text: &str,
        timeout_ms: Option<u64>,
        max_memory: Option<u64>,
        head: usize,
        no_cache: bool,
    ) -> io::Result<ServerReply> {
        self.request(&ClientRequest::Query {
            text: text.to_owned(),
            timeout_ms,
            max_memory,
            head,
            no_cache,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<ServerReply> {
        self.request(&ClientRequest::Ping)
    }

    /// Server counters snapshot.
    pub fn stats(&mut self) -> io::Result<ServerReply> {
        self.request(&ClientRequest::Stats)
    }
}
