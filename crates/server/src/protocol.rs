//! The serve wire protocol: length-prefixed JSON frames.
//!
//! Each frame is a 4-byte big-endian length followed by that many bytes
//! of JSON — the same framing discipline as the federation transport,
//! kept deliberately simple so any language with a socket and a JSON
//! parser can speak it. One request frame yields exactly one reply
//! frame; requests on one connection are served in order.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on a single frame, to keep a garbled or hostile length
/// prefix from provoking an unbounded allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// One client → server request.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum ClientRequest {
    /// Run a GMQL query. Per-request limits are carved out of the
    /// server-wide budgets; `None` inherits the server defaults.
    Query {
        /// GMQL source text.
        text: String,
        /// Wall-clock deadline for this query, in milliseconds.
        timeout_ms: Option<u64>,
        /// Memory budget for this query's governed intermediates, in
        /// bytes. Reserved from the server-wide memory pool.
        max_memory: Option<u64>,
        /// Number of region rows to return per materialised output
        /// (0 = summaries only).
        head: usize,
        /// Bypass the server's query result cache: neither serve from
        /// it nor populate it. Older clients omit the field (defaults
        /// to `false`).
        #[serde(default)]
        no_cache: bool,
    },
    /// Liveness probe; the reply reports current admission state, which
    /// also makes server saturation observable to tests and clients.
    Ping,
    /// Server-level counters snapshot.
    Stats,
}

/// One server → client reply.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum ServerReply {
    /// A query completed.
    Result {
        /// Trace id assigned to this request (correlates with server
        /// logs and flight-recorder dumps).
        trace_id: u64,
        /// Server-side execution wall time, microseconds.
        elapsed_us: u64,
        /// One summary per materialised output, in name order.
        outputs: Vec<OutputSummary>,
        /// Whether the result came from the server's query result
        /// cache (hit or coalesced wait) rather than a fresh execution.
        #[serde(default)]
        cached: bool,
    },
    /// A query failed; `kind` is machine-readable.
    Error {
        /// What went wrong.
        kind: ServeErrorKind,
        /// Human-readable detail.
        message: String,
        /// For capacity rejections: when it is worth trying again,
        /// in milliseconds.
        retry_after_ms: Option<u64>,
    },
    /// Reply to [`ClientRequest::Ping`].
    Pong {
        /// Queries currently executing.
        inflight: u64,
        /// Queries currently waiting in the admission queue.
        queued: u64,
    },
    /// Reply to [`ClientRequest::Stats`].
    Stats(ServeStats),
}

/// Machine-readable failure classes, mirroring the engine's typed
/// errors plus the server-side capacity outcomes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// GMQL text failed to parse.
    Parse,
    /// The query compiled or executed with a non-resource error.
    Runtime,
    /// The query was cancelled (client or server shutdown).
    Cancelled,
    /// The per-query wall-clock deadline fired.
    DeadlineExceeded,
    /// The per-query memory budget rejected an allocation.
    MemoryExhausted,
    /// Admission control: in-flight cap and queue are both full.
    /// `retry_after_ms` is set.
    Rejected,
    /// The server-wide memory pool could not cover the requested
    /// budget. `retry_after_ms` is set.
    PoolExhausted,
    /// The server is draining and accepts no new queries.
    ShuttingDown,
    /// The request itself was malformed.
    BadRequest,
    /// The reply (even with head rows truncated) would exceed
    /// [`MAX_FRAME_BYTES`]; retry with a smaller `head`.
    ResponseTooLarge,
}

/// Per-output result summary (region data stays server-side except for
/// the requested `head` rows).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct OutputSummary {
    /// Materialised variable name.
    pub name: String,
    /// Samples in the output dataset.
    pub samples: usize,
    /// Regions across all samples.
    pub regions: usize,
    /// Up to `head` rendered region rows
    /// (`sample<TAB>chr<TAB>start<TAB>stop<TAB>strand<TAB>values`).
    pub head: Vec<String>,
}

/// Server counters snapshot returned by [`ClientRequest::Stats`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ServeStats {
    /// Queries currently executing.
    pub inflight: u64,
    /// Queries waiting in the admission queue.
    pub queued: u64,
    /// Query requests accepted since the server started.
    pub requests: u64,
    /// Query requests rejected by admission or the memory pool.
    pub rejected: u64,
    /// Bytes currently reserved from the server memory pool.
    pub mem_reserved: u64,
    /// Server memory pool capacity, bytes.
    pub mem_capacity: u64,
    /// Result-cache hits since the server started (0 when disabled).
    #[serde(default)]
    pub result_cache_hits: u64,
    /// Result-cache misses (fresh executions) since start.
    #[serde(default)]
    pub result_cache_misses: u64,
    /// Requests that waited on a concurrent identical execution and
    /// shared its result.
    #[serde(default)]
    pub result_cache_coalesced: u64,
    /// Entries evicted under byte/budget pressure.
    #[serde(default)]
    pub result_cache_evictions: u64,
    /// Entries invalidated by a source-dataset generation change.
    #[serde(default)]
    pub result_cache_invalidations: u64,
    /// Entries currently resident.
    #[serde(default)]
    pub result_cache_entries: u64,
    /// Encoded bytes currently resident.
    #[serde(default)]
    pub result_cache_bytes: u64,
    /// Configured result-cache capacity, bytes (0 = disabled).
    #[serde(default)]
    pub result_cache_capacity: u64,
}

/// Outcome of one timed read attempt (see [`read_frame_timed`]).
pub enum FrameRead {
    /// A whole frame arrived.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly.
    Eof,
    /// The read timed out before the first byte of a frame — the
    /// connection is idle (mid-frame timeouts keep waiting instead, so
    /// a slow writer never desyncs the stream).
    Idle,
}

/// Serialize `value` into a complete frame (length prefix + JSON body),
/// or `Err(FrameTooLarge)` with the offending body size when it exceeds
/// [`MAX_FRAME_BYTES`]. Encoding separately from writing lets the
/// server turn an oversized reply into a typed in-band error instead of
/// tearing down the connection mid-exchange.
pub fn encode_frame<T: Serialize>(value: &T) -> Result<Vec<u8>, FrameTooLarge> {
    let body = serde_json::to_vec(value)
        .map_err(|e| FrameTooLarge { bytes: 0, serde_error: Some(e.to_string()) })?;
    if body.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(FrameTooLarge { bytes: body.len() as u64, serde_error: None });
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Why [`encode_frame`] refused to produce a frame.
#[derive(Debug)]
pub struct FrameTooLarge {
    /// Serialized body size that exceeded the cap (0 when the failure
    /// was a serialization error rather than size).
    pub bytes: u64,
    /// Set when serialization itself failed.
    pub serde_error: Option<String>,
}

/// Serialize `value` as one frame onto `w`.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let frame = encode_frame(value).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            e.serde_error.unwrap_or_else(|| {
                format!("frame of {} bytes exceeds cap {MAX_FRAME_BYTES}", e.bytes)
            }),
        )
    })?;
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame, treating a timeout before the first byte as
/// [`FrameRead::Idle`]. Intended for sockets with a read timeout set:
/// the serve loop polls for shutdown between idle reads.
pub fn read_frame_timed(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameRead::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => got += n,
            Err(e) if timed_out(&e) => {
                if got == 0 {
                    return Ok(FrameRead::Idle);
                }
                // Mid-prefix: keep waiting so we never desync.
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < body.len() {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if timed_out(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(body))
}

/// Blocking read of one frame; `None` on clean EOF. For clients, whose
/// sockets have no read timeout.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    match read_frame_timed(r)? {
        FrameRead::Frame(f) => Ok(Some(f)),
        FrameRead::Eof => Ok(None),
        FrameRead::Idle => unreachable!("no read timeout set on this stream"),
    }
}

fn timed_out(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let req = ClientRequest::Query {
            text: "MATERIALIZE R;".into(),
            timeout_ms: Some(5_000),
            max_memory: None,
            head: 3,
            no_cache: false,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        assert_eq!(buf.len(), 4 + u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize);
        let mut cursor = io::Cursor::new(buf);
        let body = read_frame(&mut cursor).unwrap().unwrap();
        let back: ClientRequest = serde_json::from_slice(&body).unwrap();
        assert_eq!(back, req);
        // EOF after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn pre_cache_requests_default_to_cached_queries() {
        // A frame from a client built before `no_cache` existed must
        // still parse (and opt into the cache).
        let old =
            r#"{"Query":{"text":"MATERIALIZE R;","timeout_ms":null,"max_memory":null,"head":0}}"#;
        let back: ClientRequest = serde_json::from_str(old).unwrap();
        assert!(matches!(back, ClientRequest::Query { no_cache: false, .. }));
    }

    #[test]
    fn encode_frame_reports_oversize_instead_of_writing() {
        let huge = ServerReply::Result {
            trace_id: 1,
            elapsed_us: 1,
            outputs: vec![OutputSummary {
                name: "R".into(),
                samples: 1,
                regions: 1,
                head: vec!["x".repeat(MAX_FRAME_BYTES as usize + 16)],
            }],
            cached: false,
        };
        let err = encode_frame(&huge).unwrap_err();
        assert!(err.serde_error.is_none());
        assert!(err.bytes as u32 > MAX_FRAME_BYTES);
        // write_frame surfaces the same condition as an io error.
        let mut sink = Vec::new();
        assert_eq!(write_frame(&mut sink, &huge).unwrap_err().kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing is written for an oversized frame");
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        buf.extend_from_slice(b"garbage");
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"only a few bytes");
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
