//! # `nggc-server` — the concurrent multi-client query service
//!
//! The paper's vision (§4.3–4.5) is a *shared* genomic data-management
//! service: many analysts querying one curated repository. This crate
//! turns the single-shot CLI pipeline into that service: `nggc serve`
//! runs a long-lived [`Server`] that accepts concurrent clients over a
//! length-prefixed JSON protocol, parses/optimizes/executes GMQL
//! against one shared [`Repository`](nggc_repository::Repository) and
//! worker pool, and returns results or typed errors.
//!
//! Concurrency is governed at three layers:
//!
//! - **Admission** ([`Admission`]): an in-flight cap plus a bounded
//!   wait queue; load beyond both is rejected immediately with a
//!   `retry_after_ms` hint rather than queueing without bound.
//! - **Memory** ([`MemoryPool`]): every admitted query carves its
//!   `QueryGovernor` budget from one server-wide pool, so concurrent
//!   budgets can never sum past provisioned capacity.
//! - **Cancellation**: shutdown (Ctrl-C / SIGTERM in the CLI) stops
//!   accepting, refuses new queries, drains in-flight ones, and cancels
//!   stragglers through their governor `CancelToken`s.
//!
//! Every request runs under its own trace id
//! ([`nggc_obs::TraceContext`]); server activity is visible as
//! `nggc_serve_*` metrics and, when armed, a per-request slow-query
//! flight recorder (see `docs/serving.md`).

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionPermit, AdmitError, MemoryPool, MemoryReservation};
pub use client::Client;
pub use protocol::{
    ClientRequest, OutputSummary, ServeErrorKind, ServeStats, ServerReply, MAX_FRAME_BYTES,
};
pub use server::{ServeConfig, Server, ServerHandle};
