//! Admission control and the server-wide memory pool.
//!
//! Two independent gates stand between an accepted connection and the
//! execution engine:
//!
//! 1. [`Admission`] bounds **concurrency**: at most `max_inflight`
//!    queries execute at once; up to `max_queue` more wait their turn;
//!    anything beyond that is rejected immediately with a retry-after
//!    hint, so overload degrades into fast typed refusals instead of
//!    unbounded queueing (the paper's §4.4 "control of staging
//!    resources", applied to compute).
//! 2. [`MemoryPool`] bounds **memory**: every admitted query reserves
//!    its governor budget from one server-wide pool before executing,
//!    so the sum of per-query budgets can never exceed what the
//!    operator provisioned.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`Admission::admit`] refused a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// In-flight cap reached and the wait queue is full.
    QueueFull,
    /// The server is draining; no new work is admitted.
    ShuttingDown,
}

#[derive(Debug)]
struct AdmState {
    inflight: u64,
    queued: u64,
    shutting_down: bool,
}

/// Concurrency gate for query execution. See the module docs.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<AdmState>,
    cv: Condvar,
    max_inflight: u64,
    max_queue: u64,
    /// Hint returned with rejections: how long a client should back off
    /// before retrying.
    retry_after: Duration,
}

impl Admission {
    /// Gate allowing `max_inflight` concurrent queries with a wait
    /// queue of `max_queue`.
    pub fn new(max_inflight: u64, max_queue: u64, retry_after: Duration) -> Admission {
        Admission {
            state: Mutex::new(AdmState { inflight: 0, queued: 0, shutting_down: false }),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
            retry_after,
        }
    }

    /// Acquire an execution slot, waiting in the queue if the in-flight
    /// cap is reached. Returns immediately with
    /// [`AdmitError::QueueFull`] when the queue is also full — callers
    /// turn that into a typed reject with [`Admission::retry_after`].
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, AdmitError> {
        let reg = nggc_obs::global();
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if st.inflight >= self.max_inflight {
            if st.queued >= self.max_queue {
                return Err(AdmitError::QueueFull);
            }
            st.queued += 1;
            reg.gauge("nggc_serve_queue_depth").set(st.queued as i64);
            while st.inflight >= self.max_inflight && !st.shutting_down {
                st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            st.queued -= 1;
            reg.gauge("nggc_serve_queue_depth").set(st.queued as i64);
            if st.shutting_down {
                self.cv.notify_all();
                return Err(AdmitError::ShuttingDown);
            }
        }
        st.inflight += 1;
        reg.gauge("nggc_serve_inflight").set(st.inflight as i64);
        Ok(AdmissionPermit { admission: self })
    }

    /// Non-waiting variant: take a slot only if one is free right now.
    /// Used by tests and maintenance tooling to pin capacity.
    pub fn try_admit(&self) -> Result<AdmissionPermit<'_>, AdmitError> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if st.inflight >= self.max_inflight {
            return Err(AdmitError::QueueFull);
        }
        st.inflight += 1;
        nggc_obs::global().gauge("nggc_serve_inflight").set(st.inflight as i64);
        Ok(AdmissionPermit { admission: self })
    }

    /// The back-off hint attached to rejections, scaled with current
    /// load: the configured base when the queue is empty, growing
    /// linearly with queue depth (capped at 16× base) so clients back
    /// off proportionally under pressure instead of stampeding back in
    /// lockstep after a fixed interval.
    pub fn retry_after(&self) -> Duration {
        let queued = self.state.lock().unwrap_or_else(|p| p.into_inner()).queued;
        self.retry_after * (1 + queued.min(15)) as u32
    }

    /// The configured base back-off hint, before load scaling.
    pub fn retry_after_base(&self) -> Duration {
        self.retry_after
    }

    /// Currently executing queries.
    pub fn inflight(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).inflight
    }

    /// Queries waiting for a slot.
    pub fn queued(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).queued
    }

    /// True once [`Admission::begin_shutdown`] has flipped the gate into
    /// drain mode. Lets fast paths that bypass admission (result-cache
    /// hits) still refuse new work during drain.
    pub fn is_shutting_down(&self) -> bool {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).shutting_down
    }

    /// Flip into drain mode: queued waiters are released with
    /// [`AdmitError::ShuttingDown`] and new admissions are refused.
    /// In-flight permits are unaffected — they finish and drop.
    pub fn begin_shutdown(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.shutting_down = true;
        self.cv.notify_all();
    }

    /// Block until every in-flight query has released its permit, or
    /// `timeout` elapses. Returns whether the drain completed.
    pub fn await_drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.inflight > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _timed_out) =
                self.cv.wait_timeout(st, left).unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
        true
    }
}

/// RAII execution slot: dropping it frees the slot and wakes one queued
/// waiter (and the drain loop).
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock().unwrap_or_else(|p| p.into_inner());
        st.inflight -= 1;
        nggc_obs::global().gauge("nggc_serve_inflight").set(st.inflight as i64);
        drop(st);
        self.admission.cv.notify_all();
    }
}

/// Server-wide memory pool. Per-query governor budgets are *carved*
/// from this by [`MemoryPool::reserve`]; the reservation is returned
/// when the query finishes, so concurrent queries can never
/// collectively budget more than the pool's capacity.
pub struct MemoryPool {
    capacity: u64,
    reserved: AtomicU64,
}

impl MemoryPool {
    /// Pool with `capacity` bytes to hand out.
    pub fn new(capacity: u64) -> MemoryPool {
        MemoryPool { capacity, reserved: AtomicU64::new(0) }
    }

    /// Carve `bytes` out of the pool, or `None` when the remaining
    /// capacity cannot cover it.
    pub fn reserve(&self, bytes: u64) -> Option<MemoryReservation<'_>> {
        self.reserve_raw(bytes).then(|| MemoryReservation { pool: self, bytes })
    }

    /// Non-RAII [`MemoryPool::reserve`]: on success the caller owns
    /// `bytes` and must return them with [`MemoryPool::release_raw`].
    /// For holders whose lifetime is not a scope — e.g. the query
    /// result cache, which releases when an entry is evicted.
    pub fn reserve_raw(&self, bytes: u64) -> bool {
        let mut current = self.reserved.load(Ordering::Relaxed);
        loop {
            let Some(next) = current.checked_add(bytes) else {
                return false;
            };
            if next > self.capacity {
                return false;
            }
            match self.reserved.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    nggc_obs::global().gauge("nggc_serve_mem_reserved").set(next as i64);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Return `bytes` taken with [`MemoryPool::reserve_raw`].
    pub fn release_raw(&self, bytes: u64) {
        let left = self.reserved.fetch_sub(bytes, Ordering::AcqRel) - bytes;
        nggc_obs::global().gauge("nggc_serve_mem_reserved").set(left as i64);
    }

    /// Total bytes the pool can hand out.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved by running queries.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }
}

/// RAII slice of the pool; dropping returns the bytes.
pub struct MemoryReservation<'a> {
    pool: &'a MemoryPool,
    bytes: u64,
}

impl MemoryReservation<'_> {
    /// Size of this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryReservation<'_> {
    fn drop(&mut self) {
        self.pool.release_raw(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_cap_then_rejects_past_queue() {
        let adm = Admission::new(2, 0, Duration::from_millis(50));
        let a = adm.admit().unwrap();
        let b = adm.admit().unwrap();
        assert_eq!(adm.inflight(), 2);
        assert_eq!(adm.admit().unwrap_err(), AdmitError::QueueFull);
        drop(a);
        let _c = adm.admit().unwrap();
        drop(b);
        assert_eq!(adm.inflight(), 1);
    }

    #[test]
    fn queue_waits_for_a_slot() {
        let adm = Arc::new(Admission::new(1, 4, Duration::from_millis(50)));
        let first = adm.admit().unwrap();
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || {
            let permit = adm2.admit().unwrap();
            drop(permit);
        });
        // The waiter must park in the queue rather than reject.
        while adm.queued() == 0 {
            std::thread::yield_now();
        }
        drop(first);
        waiter.join().unwrap();
        assert_eq!(adm.inflight(), 0);
        assert_eq!(adm.queued(), 0);
    }

    #[test]
    fn shutdown_releases_queued_waiters() {
        let adm = Arc::new(Admission::new(1, 4, Duration::from_millis(50)));
        let held = adm.admit().unwrap();
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.admit().err());
        while adm.queued() == 0 {
            std::thread::yield_now();
        }
        adm.begin_shutdown();
        assert_eq!(waiter.join().unwrap(), Some(AdmitError::ShuttingDown));
        assert_eq!(adm.admit().unwrap_err(), AdmitError::ShuttingDown);
        // Drain completes once the in-flight permit is dropped.
        assert!(!adm.await_drain(Duration::from_millis(10)));
        drop(held);
        assert!(adm.await_drain(Duration::from_millis(500)));
    }

    #[test]
    fn retry_after_scales_with_queue_depth() {
        let base = Duration::from_millis(100);
        let adm = Arc::new(Admission::new(1, 4, base));
        // Empty queue: the hint is exactly the configured base.
        assert_eq!(adm.retry_after(), base);
        let held = adm.admit().unwrap();
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let adm = Arc::clone(&adm);
                std::thread::spawn(move || drop(adm.admit()))
            })
            .collect();
        while adm.queued() < 3 {
            std::thread::yield_now();
        }
        // Three queued: clients are told to back off 4× as long.
        assert_eq!(adm.retry_after(), base * 4);
        assert_eq!(adm.retry_after_base(), base);
        drop(held);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(adm.retry_after(), base);
    }

    #[test]
    fn raw_reservations_balance() {
        let pool = MemoryPool::new(100);
        assert!(pool.reserve_raw(60));
        assert!(!pool.reserve_raw(50));
        assert_eq!(pool.reserved(), 60);
        pool.release_raw(60);
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn memory_pool_carves_and_returns() {
        let pool = MemoryPool::new(100);
        let a = pool.reserve(60).unwrap();
        assert!(pool.reserve(50).is_none(), "would exceed capacity");
        let b = pool.reserve(40).unwrap();
        assert_eq!(pool.reserved(), 100);
        drop(a);
        assert_eq!(pool.reserved(), 40);
        drop(b);
        assert_eq!(pool.reserved(), 0);
        assert!(pool.reserve(100).is_some());
    }
}
