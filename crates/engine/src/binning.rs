//! Genome binning.
//!
//! The GMQL cloud implementations partition the genome into fixed-width
//! bins so that genometric operations parallelise and never compare
//! regions that are far apart. This module provides the binning arithmetic
//! and the **anchor-bin deduplication rule**: a region pair spanning
//! several common bins is reported only in the bin containing
//! `max(left_a, left_b)`, so every overlapping pair is emitted exactly
//! once without a post-hoc dedup pass.

/// Fixed-width genome binning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binner {
    width: u64,
}

impl Binner {
    /// Default bin width used by the engine (100 kb, within the range the
    /// GMQL Spark implementation found effective).
    pub const DEFAULT_WIDTH: u64 = 100_000;

    /// Create a binner; `width` must be positive.
    pub fn new(width: u64) -> Binner {
        assert!(width > 0, "bin width must be positive");
        Binner { width }
    }

    /// The configured bin width in bp.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Bin index containing position `pos`.
    pub fn bin_of(&self, pos: u64) -> u64 {
        pos / self.width
    }

    /// Inclusive range of bin indices overlapped by the half-open interval
    /// `[left, right)`. Zero-length intervals occupy the bin of their
    /// position.
    pub fn bin_range(&self, left: u64, right: u64) -> std::ops::RangeInclusive<u64> {
        let last = if right > left { (right - 1) / self.width } else { left / self.width };
        (left / self.width)..=last
    }

    /// The anchor bin of a candidate pair: the bin of `max(left_a,
    /// left_b)`. Report the pair only when processing this bin.
    pub fn anchor_bin(&self, left_a: u64, left_b: u64) -> u64 {
        self.bin_of(left_a.max(left_b))
    }
}

impl Default for Binner {
    fn default() -> Self {
        Binner::new(Binner::DEFAULT_WIDTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_of_positions() {
        let b = Binner::new(100);
        assert_eq!(b.bin_of(0), 0);
        assert_eq!(b.bin_of(99), 0);
        assert_eq!(b.bin_of(100), 1);
    }

    #[test]
    fn bin_range_half_open() {
        let b = Binner::new(100);
        assert_eq!(b.bin_range(0, 100), 0..=0, "[0,100) stays in bin 0");
        assert_eq!(b.bin_range(0, 101), 0..=1);
        assert_eq!(b.bin_range(250, 260), 2..=2);
        assert_eq!(b.bin_range(50, 350), 0..=3);
    }

    #[test]
    fn zero_length_interval() {
        let b = Binner::new(100);
        assert_eq!(b.bin_range(200, 200), 2..=2);
    }

    #[test]
    fn anchor_bin_unique_per_pair() {
        let b = Binner::new(100);
        // Pair spanning bins 0..=3 and 1..=2: anchor = bin of max(50, 150) = 1.
        assert_eq!(b.anchor_bin(50, 150), 1);
        assert_eq!(b.anchor_bin(150, 50), 1, "symmetric");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        Binner::new(0);
    }
}
