//! A hand-built work-stealing worker pool.
//!
//! The paper's architecture runs GMQL operators on Spark/Flink (§4.2);
//! this reproduction substitutes a manual parallel runtime. The pool is a
//! classic work-stealing design: every worker owns a LIFO deque, a global
//! FIFO injector receives submitted jobs, and idle workers steal from the
//! injector first and then from siblings. Idle workers park on a condvar
//! so an idle pool burns no CPU.
//!
//! [`WorkerPool::parallel_map`] is the primitive all operators build on:
//! it fans a batch of borrowed work items out to the pool and blocks until
//! every item completed. While blocked, the **calling thread helps** by
//! executing queued jobs, which makes nested `parallel_map` calls
//! deadlock-free even on a single-worker pool.

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use crossbeam_deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long a helping caller blocks on the result channel before
/// re-checking the queues for stealable work. Mirrors the worker
/// condvar park interval: long enough that an idle tail burns no CPU
/// (the old 100 µs poll pinned a core for the whole tail of a long
/// job), short enough that late-injected nested work is picked up
/// promptly.
const HELP_RECHECK: Duration = Duration::from_millis(10);

/// Pool-local event counters, mirrored into the global `nggc-obs`
/// registry (`nggc_pool_*`). Kept per-pool so tests and
/// [`WorkerPool::stats`] see this pool's activity in isolation.
struct PoolCounters {
    /// Jobs executed, by anyone (workers and helping callers).
    jobs: AtomicU64,
    /// Successful steals from a sibling worker's deque.
    sibling_steals: AtomicU64,
    /// Times a worker parked on the condvar.
    parks: AtomicU64,
    /// Times a parked worker woke (notify or timeout).
    wakes: AtomicU64,
    /// Per-worker busy nanoseconds (helping callers not included).
    busy_ns: Vec<AtomicU64>,
    /// Pool creation time, the denominator of lifetime utilization.
    started: Instant,
    /// Last [`WorkerPool::stats`] snapshot: when it was taken and the
    /// total busy nanoseconds at that point. Windowed utilization is
    /// measured against this instead of pool age, so a pool that idled
    /// since startup but is saturated *now* reads ~100%, not ~0%.
    window: Mutex<WindowSnap>,
    /// Global-registry handles, resolved once at pool construction.
    g_jobs: nggc_obs::Counter,
    g_sibling_steals: nggc_obs::Counter,
    g_parks: nggc_obs::Counter,
    g_wakes: nggc_obs::Counter,
    g_busy_ns: nggc_obs::Counter,
    g_job_wall: nggc_obs::Histogram,
}

/// See [`PoolCounters::window`].
struct WindowSnap {
    at: Instant,
    busy_ns: u64,
}

impl PoolCounters {
    fn new(workers: usize) -> PoolCounters {
        let reg = nggc_obs::global();
        let now = Instant::now();
        PoolCounters {
            jobs: AtomicU64::new(0),
            sibling_steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            started: now,
            window: Mutex::new(WindowSnap { at: now, busy_ns: 0 }),
            g_jobs: reg.counter("nggc_pool_jobs_total"),
            g_sibling_steals: reg.counter("nggc_pool_sibling_steals_total"),
            g_parks: reg.counter("nggc_pool_parks_total"),
            g_wakes: reg.counter("nggc_pool_wakes_total"),
            g_busy_ns: reg.counter("nggc_pool_busy_ns_total"),
            g_job_wall: reg.histogram("nggc_pool_job_wall_ns"),
        }
    }
}

/// Point-in-time view of a pool's activity (see [`WorkerPool::stats`]).
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Jobs executed since the pool started (including helping callers).
    pub jobs_executed: u64,
    /// Successful steals from sibling deques.
    pub sibling_steals: u64,
    /// Times a worker parked waiting for work.
    pub parks: u64,
    /// Times a parked worker woke up.
    pub wakes: u64,
    /// Busy wall time per worker thread.
    pub busy: Vec<Duration>,
    /// Wall time since the pool was created.
    pub elapsed: Duration,
    /// Busy wall time accumulated since the previous [`WorkerPool::stats`]
    /// call (summed over workers).
    pub busy_recent: Duration,
    /// Wall time since the previous [`WorkerPool::stats`] call — the
    /// denominator of [`PoolStats::utilization`]. Equals `elapsed` for
    /// the first snapshot.
    pub window: Duration,
}

impl PoolStats {
    /// Fraction of worker-thread time spent running jobs **since the
    /// previous `stats()` snapshot**, in `[0, 1]`:
    /// `busy_recent / (workers × window)`. A pool that sat idle since
    /// startup but is saturated right now reads ~1.0 here, unlike
    /// [`PoolStats::lifetime_utilization`] which averages over pool age.
    pub fn utilization(&self) -> f64 {
        Self::ratio(self.busy_recent.as_secs_f64(), self.workers, self.window.as_secs_f64())
    }

    /// Fraction of worker-thread time spent running jobs since the pool
    /// was created: `sum(busy) / (workers × elapsed)`.
    pub fn lifetime_utilization(&self) -> f64 {
        let total: f64 = self.busy.iter().map(Duration::as_secs_f64).sum();
        Self::ratio(total, self.workers, self.elapsed.as_secs_f64())
    }

    fn ratio(busy: f64, workers: usize, wall: f64) -> f64 {
        let budget = workers as f64 * wall;
        if budget <= 0.0 {
            0.0
        } else {
            (busy / budget).min(1.0)
        }
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    counters: PoolCounters,
}

impl Shared {
    /// Grab a job from the injector or any worker deque (used by helping
    /// callers, which have no local deque).
    fn steal_any(&self) -> Option<Job> {
        loop {
            match self.injector.steal() {
                crossbeam_deque::Steal::Success(j) => return Some(j),
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
        for s in &self.stealers {
            loop {
                match s.steal() {
                    crossbeam_deque::Steal::Success(j) => {
                        self.counters.sibling_steals.fetch_add(1, Ordering::Relaxed);
                        self.counters.g_sibling_steals.inc();
                        return Some(j);
                    }
                    crossbeam_deque::Steal::Retry => continue,
                    crossbeam_deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Run a job, attributing its wall time to `worker` (if any) and
    /// counting it in the pool-local and global metrics.
    fn run_job(&self, job: Job, worker: Option<usize>) {
        let c = &self.counters;
        // Count before running: `parallel_map` callers receive a job's
        // result from inside the job itself, so anyone who has observed
        // all results must also observe the full job count.
        c.jobs.fetch_add(1, Ordering::Relaxed);
        c.g_jobs.inc();
        let t0 = Instant::now();
        job();
        let wall = t0.elapsed();
        if let Some(i) = worker {
            c.busy_ns[i].fetch_add(wall.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
            c.g_busy_ns.add(wall.as_nanos().min(u64::MAX as u128) as u64);
        }
        c.g_job_wall.record_duration(wall);
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool signals shutdown and joins all workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let mut local_queues = Vec::with_capacity(workers);
        let mut stealers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let w = Worker::new_lifo();
            stealers.push(w.stealer());
            local_queues.push(w);
        }
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            counters: PoolCounters::new(workers),
        });
        let handles = local_queues
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nggc-worker-{i}"))
                    .spawn(move || worker_loop(i, local, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles, workers }
    }

    /// Spawn a pool sized to the machine (`available_parallelism`).
    pub fn with_default_size() -> WorkerPool {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        WorkerPool::new(n)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of this pool's activity counters (jobs executed, steal
    /// and park/wake counts, per-worker busy time). The same numbers are
    /// mirrored into the global `nggc-obs` registry as `nggc_pool_*`.
    ///
    /// Each call also closes a **utilization window**: `busy_recent` and
    /// `window` measure activity since the previous `stats()` call (or
    /// pool creation, for the first one), which is what
    /// [`PoolStats::utilization`] reports.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        let busy: Vec<Duration> =
            c.busy_ns.iter().map(|b| Duration::from_nanos(b.load(Ordering::Relaxed))).collect();
        let busy_total_ns: u64 =
            busy.iter().map(|d| d.as_nanos().min(u64::MAX as u128) as u64).sum();
        let now = Instant::now();
        let (busy_recent, window) = {
            let mut snap = c.window.lock();
            let recent = Duration::from_nanos(busy_total_ns.saturating_sub(snap.busy_ns));
            let window = now.duration_since(snap.at);
            *snap = WindowSnap { at: now, busy_ns: busy_total_ns };
            (recent, window)
        };
        PoolStats {
            workers: self.workers,
            jobs_executed: c.jobs.load(Ordering::Relaxed),
            sibling_steals: c.sibling_steals.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            wakes: c.wakes.load(Ordering::Relaxed),
            busy,
            elapsed: c.started.elapsed(),
            busy_recent,
            window,
        }
    }

    /// Apply `f` to every item in parallel, returning results in input
    /// order. Blocks until all items complete; the calling thread executes
    /// queued jobs while waiting.
    ///
    /// # Panic propagation
    ///
    /// A panic inside `f` never poisons the pool. Each queued job wraps
    /// `f` in [`catch_unwind`], so the worker thread that ran the
    /// panicking item survives and keeps draining the queue; the payload
    /// travels back over the result channel like a normal result. The
    /// caller waits until **all** items have reported (so borrowed data
    /// is never left referenced by queued jobs), then re-raises the
    /// first panic in input order via [`resume_unwind`]. Subsequent
    /// `parallel_map` calls on the same pool run normally — see the
    /// `panic_propagates_after_completion` and
    /// `pool_survives_repeated_panics` tests.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers == 1 {
            // Degenerate cases: run inline, no queue traffic.
            return items.into_iter().map(&f).collect();
        }
        type TaskResult<R> = (usize, std::thread::Result<R>);
        let (tx, rx): (Sender<TaskResult<R>>, Receiver<TaskResult<R>>) = bounded(n);
        let f_ref = &f;
        for (i, item) in items.into_iter().enumerate() {
            let tx = tx.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| f_ref(item)));
                // The receiver outlives all jobs; ignore send failure that
                // can only happen during unwinding of the whole process.
                let _ = tx.send((i, outcome));
            });
            // SAFETY: `parallel_map` does not return before receiving one
            // message per submitted job, and jobs always send exactly one
            // message (panics are caught). Hence every borrow captured by
            // the job outlives its execution, and extending the lifetime to
            // 'static for queue storage is sound.
            let job: Job = unsafe { std::mem::transmute(job) };
            self.shared.injector.push(job);
        }
        drop(tx);
        self.shared.wake.notify_all();

        let mut results: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        while received < n {
            match rx.try_recv() {
                Ok((i, r)) => {
                    results[i] = Some(r);
                    received += 1;
                }
                Err(TryRecvError::Empty) => {
                    // Help: run someone's job instead of spinning. With
                    // nothing left to steal, block on the result channel
                    // (bounded so late-injected nested work still gets
                    // helped) rather than burning a core on the tail.
                    if let Some(job) = self.shared.steal_any() {
                        self.shared.run_job(job, None);
                    } else {
                        match rx.recv_timeout(HELP_RECHECK) {
                            Ok((i, r)) => {
                                results[i] = Some(r);
                                received += 1;
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => {
                                unreachable!(
                                    "all senders kept alive by queued jobs until they send"
                                )
                            }
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    unreachable!("all senders kept alive by queued jobs until they send")
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for r in results {
            match r.expect("all results received") {
                Ok(v) => out.push(v),
                Err(p) => panic = Some(panic.unwrap_or(p)),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }

    /// Parallel map over a borrowed slice (convenience over
    /// [`WorkerPool::parallel_map`]).
    pub fn parallel_map_slice<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        self.parallel_map(items.iter().collect(), f)
    }

    /// Apply `f` to every index in `0..n` in parallel, returning results
    /// in index order. Unlike [`WorkerPool::parallel_map`], which queues
    /// one job (and one boxed closure) per item, the index domain is
    /// split into O(workers) contiguous chunks — so mapping a huge
    /// logical domain (e.g. a sample cross-product) costs O(workers)
    /// setup allocation instead of O(n). The trade-off is chunk-level
    /// rather than item-level stealing granularity; four chunks per
    /// worker keeps stragglers bounded.
    pub fn parallel_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let chunks = (self.workers * 4).clamp(1, n);
        let chunk = n.div_ceil(chunks);
        let bounds: Vec<(usize, usize)> = (0..chunks)
            .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
            .filter(|(a, b)| a < b)
            .collect();
        let per: Vec<Vec<R>> = self.parallel_map(bounds, |(a, b)| (a..b).map(&f).collect());
        per.into_iter().flatten().collect()
    }

    /// Fallible [`parallel_map`](WorkerPool::parallel_map) with
    /// **fail-fast abort**: the first `Err` sets an abort flag, and
    /// still-queued items are skipped instead of executed. Items already
    /// running are not preempted (abort is cooperative, like everything
    /// in this pool), so the call still waits for every submitted job to
    /// report before returning — borrowed data is never left referenced
    /// by the queue. Returns the first error in **input order**;
    /// panics propagate like in `parallel_map`, taking precedence over
    /// errors.
    pub fn try_parallel_map<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(T) -> Result<R, E> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if n == 1 || self.workers == 1 {
            // Inline path short-circuits on the first error by itself.
            return items.into_iter().map(&f).collect();
        }
        enum Outcome<R, E> {
            Done(Result<R, E>),
            Skipped,
            Panicked(Box<dyn std::any::Any + Send>),
        }
        let abort = AtomicBool::new(false);
        let (tx, rx) = bounded::<(usize, Outcome<R, E>)>(n);
        let f_ref = &f;
        let abort_ref = &abort;
        for (i, item) in items.into_iter().enumerate() {
            let tx = tx.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = if abort_ref.load(Ordering::Acquire) {
                    Outcome::Skipped
                } else {
                    match catch_unwind(AssertUnwindSafe(|| f_ref(item))) {
                        Ok(r) => {
                            if r.is_err() {
                                abort_ref.store(true, Ordering::Release);
                            }
                            Outcome::Done(r)
                        }
                        Err(p) => {
                            abort_ref.store(true, Ordering::Release);
                            Outcome::Panicked(p)
                        }
                    }
                };
                let _ = tx.send((i, outcome));
            });
            // SAFETY: as in `parallel_map` — this call does not return
            // before receiving one message per submitted job (skipped
            // jobs send too), so every borrow captured by a job outlives
            // its execution.
            let job: Job = unsafe { std::mem::transmute(job) };
            self.shared.injector.push(job);
        }
        drop(tx);
        self.shared.wake.notify_all();

        let mut results: Vec<Option<Outcome<R, E>>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        while received < n {
            match rx.try_recv() {
                Ok((i, r)) => {
                    results[i] = Some(r);
                    received += 1;
                }
                Err(TryRecvError::Empty) => {
                    // Same help-then-block discipline as `parallel_map`.
                    if let Some(job) = self.shared.steal_any() {
                        self.shared.run_job(job, None);
                    } else {
                        match rx.recv_timeout(HELP_RECHECK) {
                            Ok((i, r)) => {
                                results[i] = Some(r);
                                received += 1;
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => {
                                unreachable!(
                                    "all senders kept alive by queued jobs until they send"
                                )
                            }
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    unreachable!("all senders kept alive by queued jobs until they send")
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        let mut error: Option<E> = None;
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for r in results {
            match r.expect("all results received") {
                Outcome::Done(Ok(v)) => out.push(v),
                Outcome::Done(Err(e)) => error = Some(error.map_or(e, |first| first)),
                Outcome::Skipped => {}
                Outcome::Panicked(p) => panic = Some(panic.unwrap_or(p)),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        match error {
            Some(e) => Err(e),
            None => {
                debug_assert_eq!(out.len(), n, "skips only happen after an error or panic");
                Ok(out)
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(index: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        // Drain local work first (LIFO keeps caches warm).
        if let Some(job) = local.pop() {
            shared.run_job(job, Some(index));
            continue;
        }
        // Refill from the injector in batches, then steal from siblings.
        let stolen = loop {
            match shared.injector.steal_batch_and_pop(&local) {
                crossbeam_deque::Steal::Success(j) => break Some(j),
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break None,
            }
        };
        if let Some(job) = stolen {
            shared.run_job(job, Some(index));
            continue;
        }
        if let Some(job) = shared.steal_any() {
            shared.run_job(job, Some(index));
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Nothing to do: park until new work or shutdown. Re-check the
        // queues under the lock to avoid a missed-wakeup race.
        let mut guard = shared.sleep_lock.lock();
        if shared.shutdown.load(Ordering::SeqCst) || !shared.injector.is_empty() {
            continue;
        }
        shared.counters.parks.fetch_add(1, Ordering::Relaxed);
        shared.counters.g_parks.inc();
        shared.wake.wait_for(&mut guard, Duration::from_millis(10));
        shared.counters.wakes.fetch_add(1, Ordering::Relaxed);
        shared.counters.g_wakes.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.parallel_map((0..1000).collect(), |i: i64| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_are_allowed() {
        let pool = WorkerPool::new(4);
        let data: Vec<String> = (0..100).map(|i| format!("item{i}")).collect();
        let lens = pool.parallel_map_slice(&data, |s| s.len());
        assert_eq!(lens[0], 5);
        assert_eq!(lens[99], 6);
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        let out = pool.parallel_map(vec![1, 2, 3], |i: i32| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn nested_parallel_map_does_not_deadlock() {
        let pool = WorkerPool::new(2);
        let out = pool.parallel_map((0..8).collect(), |i: usize| {
            pool.parallel_map((0..8).collect(), |j: usize| i * j).iter().sum::<usize>()
        });
        assert_eq!(out[2], 2 * 28);
    }

    #[test]
    fn work_actually_distributes() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.parallel_map((0..10_000).collect::<Vec<usize>>(), |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn panic_propagates_after_completion() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_map((0..64).collect(), |i: usize| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let out = pool.parallel_map(vec![1, 2], |i: i32| i);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn pool_survives_repeated_panics() {
        // A panicking job must not poison the pool: workers survive via
        // catch_unwind, locks are never held across user code, and every
        // later parallel_map completes normally.
        let pool = WorkerPool::new(4);
        for round in 0..5 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.parallel_map((0..32).collect(), |i: usize| {
                    if i % 7 == round {
                        panic!("round {round}");
                    }
                    i
                })
            }));
            assert!(result.is_err(), "round {round} should panic");
            let ok = pool.parallel_map((0..32).collect(), |i: usize| i * 2);
            assert_eq!(ok.len(), 32, "pool unusable after panic round {round}");
        }
    }

    #[test]
    fn stats_count_jobs_and_busy_time() {
        let pool = WorkerPool::new(4);
        pool.parallel_map((0..256).collect::<Vec<usize>>(), |i| {
            // Enough work to register non-zero busy time.
            (0..500).fold(i, |a, b| a.wrapping_add(b))
        });
        let stats = pool.stats();
        assert_eq!(stats.jobs_executed, 256);
        assert_eq!(stats.busy.len(), 4);
        let util = stats.utilization();
        assert!((0.0..=1.0).contains(&util), "utilization {util} out of range");
        let lifetime = stats.lifetime_utilization();
        assert!((0.0..=1.0).contains(&lifetime), "lifetime utilization {lifetime} out of range");
        // Inline fast path (n == 1) bypasses the queue entirely.
        pool.parallel_map(vec![1], |i: i32| i);
        assert_eq!(pool.stats().jobs_executed, 256);
    }

    #[test]
    fn utilization_is_windowed_not_lifetime() {
        let pool = WorkerPool::new(2);
        // A long idle stretch after creation drags the lifetime average
        // down...
        std::thread::sleep(Duration::from_millis(120));
        let idle = pool.stats(); // close the idle window
        assert!(
            idle.utilization() < 0.05,
            "idle window should read ~0, got {}",
            idle.utilization()
        );
        // ...then a burst of work: the *windowed* number must see it
        // clearly even though the lifetime average stays diluted.
        pool.parallel_map((0..64).collect::<Vec<u64>>(), |i| {
            let t0 = Instant::now();
            let mut acc = i;
            while t0.elapsed() < Duration::from_millis(2) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        let busy = pool.stats();
        assert!(busy.window < busy.elapsed, "window must reset at each snapshot");
        assert!(
            busy.utilization() > busy.lifetime_utilization(),
            "recent burst: windowed {} should exceed lifetime {}",
            busy.utilization(),
            busy.lifetime_utilization()
        );
        assert!(
            busy.utilization() > 0.2,
            "a saturating burst should dominate its window, got {}",
            busy.utilization()
        );
    }

    #[test]
    fn map_range_preserves_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.parallel_map_range(1000, |i| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        // Degenerate domains.
        assert!(pool.parallel_map_range(0, |i| i).is_empty());
        assert_eq!(pool.parallel_map_range(1, |i| i + 7), vec![7]);
        // Domain smaller than the chunk count.
        assert_eq!(pool.parallel_map_range(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        let pool = WorkerPool::new(2);
        let out: Vec<i32> = pool.parallel_map(Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_shutdown_joins_cleanly() {
        let pool = WorkerPool::new(3);
        let _ = pool.parallel_map(vec![1, 2, 3], |i: i32| i);
        drop(pool); // must not hang
    }

    #[test]
    fn try_map_ok_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.try_parallel_map((0..500).collect(), |i: i64| Ok::<_, String>(i * 3));
        assert_eq!(out.unwrap(), (0..500).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_returns_first_error_in_input_order() {
        let pool = WorkerPool::new(4);
        let out: Result<Vec<usize>, String> = pool.try_parallel_map((0..64).collect(), |i| {
            if i == 50 || i == 7 {
                Err(format!("bad {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(out.unwrap_err(), "bad 7");
    }

    #[test]
    fn try_map_aborts_queued_work_after_error() {
        // With one item per queue slot and an early error, most of the
        // tail should be skipped. The guarantee is cooperative (running
        // items finish), so assert "skipped at least something big"
        // rather than an exact count.
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let out: Result<Vec<()>, ()> = pool.try_parallel_map((0..10_000).collect(), |i: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err(())
            } else {
                std::thread::yield_now();
                Ok(())
            }
        });
        assert!(out.is_err());
        let ran = ran.load(Ordering::Relaxed);
        assert!(ran < 10_000, "expected fail-fast to skip queued items, ran all {ran}");
    }

    #[test]
    fn try_map_panic_takes_precedence() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.try_parallel_map((0..32).collect(), |i: usize| {
                if i == 3 {
                    panic!("boom");
                }
                if i == 5 {
                    return Err("err");
                }
                Ok(i)
            })
        }));
        assert!(result.is_err(), "panic must propagate");
        let ok: Result<Vec<usize>, &str> = pool.try_parallel_map(vec![1, 2], Ok);
        assert_eq!(ok.unwrap(), vec![1, 2], "pool usable after panic");
    }

    #[test]
    fn try_map_single_worker_short_circuits() {
        let pool = WorkerPool::new(1);
        let ran = AtomicUsize::new(0);
        let out: Result<Vec<usize>, &str> = pool.try_parallel_map((0..100).collect(), |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 10 {
                Err("stop")
            } else {
                Ok(i)
            }
        });
        assert_eq!(out.unwrap_err(), "stop");
        assert_eq!(ran.load(Ordering::Relaxed), 11, "inline path short-circuits");
    }
}
