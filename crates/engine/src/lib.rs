//! # `nggc-engine` — the hand-built parallel runtime
//!
//! The paper (§4.2) executes GMQL on Spark/Flink; this reproduction
//! substitutes a manual parallel engine (per the calibration note "no
//! Spark; must build parallel engine manually") that implements the same
//! decomposition those backends exploit:
//!
//! * **sample parallelism** — GMQL operators implicitly iterate over all
//!   samples; each sample (or sample pair) is an independent task;
//! * **genome partitioning** — within a sample pair, per-chromosome and
//!   per-bin sharding keeps genometric operations local ([`Binner`], with
//!   the anchor-bin deduplication rule);
//! * **work stealing** — a fixed pool of workers with per-worker LIFO
//!   deques and a global injector ([`WorkerPool`]).
//!
//! The interval kernels ([`interval`]) are shared by the GMQL operators
//! and benchmarked head-to-head in the join-strategy ablation (DESIGN.md
//! E10).

#![warn(missing_docs)]

pub mod binning;
pub mod interrupt;
pub mod interval;
pub mod nclist;
pub mod par;
pub mod pool;
pub mod sort;

pub use binning::Binner;
pub use interrupt::{CancelToken, Interrupt, InterruptState};
pub use interval::{
    coverage_segments, gap_pairs_naive, gap_pairs_sort_merge, gap_pairs_sort_merge_interruptible,
    k_nearest, k_nearest_interruptible, merge_cover, overlap_pairs_binned, overlap_pairs_naive,
    overlap_pairs_sort_merge, overlap_pairs_sort_merge_interruptible, CovSeg,
};
pub use nclist::NcList;
pub use par::{union_chroms, ExecContext, CHECKPOINT_STRIDE};
pub use pool::WorkerPool;
pub use sort::parallel_sort_by;
