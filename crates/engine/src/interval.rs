//! Interval kernels: overlap joins, gap joins, coverage, k-nearest.
//!
//! Every kernel operates on slices of regions restricted to **one
//! chromosome** and sorted in genome order (by `left`, then `right`) —
//! the shape produced by [`nggc_gdm::Sample::chrom_slice`]. Strand and
//! attribute predicates are applied by the caller; kernels deal purely
//! with coordinates so they can be benchmarked and property-tested in
//! isolation (DESIGN.md experiment E10 ablates the join strategies here).

use crate::binning::Binner;
use crate::par::CHECKPOINT_STRIDE;
use nggc_gdm::{interval_overlap, GRegion};
use std::collections::HashMap;

/// Emit every overlapping pair `(i, j)` by exhaustive comparison.
/// `O(n·m)`; reference implementation for tests and the ablation bench.
pub fn overlap_pairs_naive(
    left: &[GRegion],
    right: &[GRegion],
    mut emit: impl FnMut(usize, usize),
) {
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if interval_overlap(a.left, a.right, b.left, b.right) {
                emit(i, j);
            }
        }
    }
}

/// Emit every overlapping pair via a chrom-sweep merge over the two sorted
/// slices (the strategy of BEDTools' `chromsweep`). `O(n + m + pairs)`
/// for realistic inputs.
pub fn overlap_pairs_sort_merge(
    left: &[GRegion],
    right: &[GRegion],
    emit: impl FnMut(usize, usize),
) {
    overlap_pairs_sort_merge_interruptible(left, right, || false, emit);
}

/// [`overlap_pairs_sort_merge`] with a cooperative stop predicate,
/// polled once per left region and every [`CHECKPOINT_STRIDE`] candidate
/// pairs. When `stop` returns `true` the sweep abandons the remaining
/// pairs and returns — the hook that lets a query governor abort a
/// multi-second join mid-kernel instead of at the next node boundary.
pub fn overlap_pairs_sort_merge_interruptible(
    left: &[GRegion],
    right: &[GRegion],
    mut stop: impl FnMut() -> bool,
    mut emit: impl FnMut(usize, usize),
) {
    debug_assert!(is_sorted(left) && is_sorted(right), "kernels require sorted input");
    let mut active: Vec<usize> = Vec::new();
    let mut j = 0;
    let mut tick = 0usize;
    for (i, a) in left.iter().enumerate() {
        if stop() {
            return;
        }
        // Admit right regions that start at or before a's end (`<=` keeps
        // zero-length candidates; the exact check below filters).
        while j < right.len() && right[j].left <= a.right {
            active.push(j);
            j += 1;
        }
        // Drop right regions that already ended before a starts. Later
        // left regions start no earlier, so dropping is final.
        active.retain(|&k| right[k].right >= a.left);
        for &k in &active {
            tick = tick.wrapping_add(1);
            if tick & (CHECKPOINT_STRIDE - 1) == 0 && stop() {
                return;
            }
            if interval_overlap(a.left, a.right, right[k].left, right[k].right) {
                emit(i, k);
            }
        }
    }
}

/// Emit every overlapping pair using genome binning with the anchor-bin
/// deduplication rule — the partitioning strategy of the GMQL cloud
/// implementations, which is also how the parallel engine shards joins.
pub fn overlap_pairs_binned(
    left: &[GRegion],
    right: &[GRegion],
    binner: Binner,
    mut emit: impl FnMut(usize, usize),
) {
    let mut bins: HashMap<u64, Vec<usize>> = HashMap::new();
    for (j, b) in right.iter().enumerate() {
        for bin in binner.bin_range(b.left, b.right) {
            bins.entry(bin).or_default().push(j);
        }
    }
    for (i, a) in left.iter().enumerate() {
        for bin in binner.bin_range(a.left, a.right) {
            let Some(candidates) = bins.get(&bin) else { continue };
            for &j in candidates {
                let b = &right[j];
                if interval_overlap(a.left, a.right, b.left, b.right)
                    && binner.anchor_bin(a.left, b.left) == bin
                {
                    emit(i, j);
                }
            }
        }
    }
}

/// Emit every pair whose genometric distance is at most `gap` (overlap and
/// adjacency count as distance ≤ 0). Exhaustive reference version.
pub fn gap_pairs_naive(
    left: &[GRegion],
    right: &[GRegion],
    gap: u64,
    mut emit: impl FnMut(usize, usize),
) {
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if let Some(d) = a.distance(b) {
                if d <= gap as i64 {
                    emit(i, j);
                }
            }
        }
    }
}

/// Sort-merge variant of [`gap_pairs_naive`]: pairs within `gap` bases.
pub fn gap_pairs_sort_merge(
    left: &[GRegion],
    right: &[GRegion],
    gap: u64,
    emit: impl FnMut(usize, usize),
) {
    gap_pairs_sort_merge_interruptible(left, right, gap, || false, emit);
}

/// [`gap_pairs_sort_merge`] with a cooperative stop predicate, polled
/// once per left region and every [`CHECKPOINT_STRIDE`] candidate pairs;
/// `stop() == true` abandons the remaining pairs.
pub fn gap_pairs_sort_merge_interruptible(
    left: &[GRegion],
    right: &[GRegion],
    gap: u64,
    mut stop: impl FnMut() -> bool,
    mut emit: impl FnMut(usize, usize),
) {
    debug_assert!(is_sorted(left) && is_sorted(right), "kernels require sorted input");
    let mut active: Vec<usize> = Vec::new();
    let mut j = 0;
    let mut tick = 0usize;
    for (i, a) in left.iter().enumerate() {
        if stop() {
            return;
        }
        let admit_to = a.right.saturating_add(gap);
        while j < right.len() && right[j].left <= admit_to {
            active.push(j);
            j += 1;
        }
        let keep_from = a.left.saturating_sub(gap);
        active.retain(|&k| right[k].right >= keep_from);
        for &k in &active {
            tick = tick.wrapping_add(1);
            if tick & (CHECKPOINT_STRIDE - 1) == 0 && stop() {
                return;
            }
            if let Some(d) = a.distance(&right[k]) {
                if d <= gap as i64 {
                    emit(i, k);
                }
            }
        }
    }
}

/// A maximal segment of constant coverage produced by
/// [`coverage_segments`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CovSeg {
    /// Segment start (inclusive).
    pub left: u64,
    /// Segment end (exclusive).
    pub right: u64,
    /// Number of input intervals covering the segment.
    pub acc: usize,
}

/// Sweep-line coverage: given intervals on one chromosome, return the
/// maximal segments with constant positive accumulation, in genome order.
/// This is the accumulation index underlying COVER / HISTOGRAM / SUMMIT /
/// FLAT. Zero-length intervals contribute no coverage and are skipped.
pub fn coverage_segments(intervals: &[(u64, u64)]) -> Vec<CovSeg> {
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(intervals.len() * 2);
    for &(l, r) in intervals {
        if r > l {
            events.push((l, 1));
            events.push((r, -1));
        }
    }
    if events.is_empty() {
        return Vec::new();
    }
    events.sort_unstable();
    let mut out = Vec::new();
    let mut acc: i64 = 0;
    let mut prev = events[0].0;
    let mut idx = 0;
    while idx < events.len() {
        let pos = events[idx].0;
        if pos > prev && acc > 0 {
            out.push(CovSeg { left: prev, right: pos, acc: acc as usize });
        }
        // Apply all events at this position at once.
        while idx < events.len() && events[idx].0 == pos {
            acc += events[idx].1;
            idx += 1;
        }
        prev = pos;
    }
    debug_assert_eq!(acc, 0, "events must balance");
    out
}

/// Merge coverage segments whose accumulation lies in `[min_acc,
/// max_acc]` into maximal contiguous regions, recording for each merged
/// region the maximum accumulation reached inside it. This is the core of
/// GMQL COVER(minAcc, maxAcc).
pub fn merge_cover(segments: &[CovSeg], min_acc: usize, max_acc: usize) -> Vec<(u64, u64, usize)> {
    let mut out: Vec<(u64, u64, usize)> = Vec::new();
    for seg in segments {
        if seg.acc < min_acc || seg.acc > max_acc {
            continue;
        }
        match out.last_mut() {
            Some(last) if last.1 == seg.left => {
                last.1 = seg.right;
                last.2 = last.2.max(seg.acc);
            }
            _ => out.push((seg.left, seg.right, seg.acc)),
        }
    }
    out
}

/// For each anchor region, the indices of (up to) `k` regions of `others`
/// at minimal genometric distance — the `MD(k)` genometric clause. Ties
/// are broken toward the earlier region. Overlapping regions have
/// distance ≤ 0 and therefore always rank closest.
pub fn k_nearest(anchors: &[GRegion], others: &[GRegion], k: usize) -> Vec<Vec<usize>> {
    k_nearest_interruptible(anchors, others, k, || false)
}

/// [`k_nearest`] with a cooperative stop predicate, polled once per
/// anchor. When `stop` fires the remaining anchors get empty neighbour
/// lists, so the result keeps its one-entry-per-anchor shape and callers
/// can still zip it — a governed executor turns the truncation into a
/// typed error at the node boundary.
pub fn k_nearest_interruptible(
    anchors: &[GRegion],
    others: &[GRegion],
    k: usize,
    mut stop: impl FnMut() -> bool,
) -> Vec<Vec<usize>> {
    debug_assert!(is_sorted(others), "k_nearest requires sorted `others`");
    if k == 0 || others.is_empty() {
        return vec![Vec::new(); anchors.len()];
    }
    // prefix_max_right[i] = max right end among others[0..=i]; gives a
    // lower bound on the distance of everything at or before i.
    let mut prefix_max_right = Vec::with_capacity(others.len());
    let mut m = 0;
    for o in others {
        m = m.max(o.right);
        prefix_max_right.push(m);
    }

    let mut out: Vec<Vec<usize>> = Vec::with_capacity(anchors.len());
    for a in anchors {
        if stop() {
            break;
        }
        {
            // Candidate pool: (distance, index), kept as a max-heap of size k.
            let mut heap: std::collections::BinaryHeap<(i64, usize)> =
                std::collections::BinaryHeap::new();
            let consider = |idx: usize, heap: &mut std::collections::BinaryHeap<(i64, usize)>| {
                let d = a.distance(&others[idx]).expect("same chromosome").max(0);
                if heap.len() < k {
                    heap.push((d, idx));
                } else if let Some(&(worst, widx)) = heap.peek() {
                    if d < worst || (d == worst && idx < widx) {
                        heap.pop();
                        heap.push((d, idx));
                    }
                }
            };
            let lo = others.partition_point(|o| o.left < a.left);
            // Upward scan: distance lower-bounded by others[j].left - a.right,
            // monotone in j — stop once it exceeds the current worst.
            let mut j = lo;
            while j < others.len() {
                if heap.len() == k {
                    let bound = others[j].left.saturating_sub(a.right) as i64;
                    if bound > heap.peek().map(|&(w, _)| w).unwrap_or(i64::MAX) {
                        break;
                    }
                }
                consider(j, &mut heap);
                j += 1;
            }
            // Downward scan: lower bound via prefix max of right ends.
            let mut i = lo;
            while i > 0 {
                i -= 1;
                if heap.len() == k {
                    let bound = a.left.saturating_sub(prefix_max_right[i]) as i64;
                    if bound > heap.peek().map(|&(w, _)| w).unwrap_or(i64::MAX) {
                        break;
                    }
                }
                consider(i, &mut heap);
            }
            let mut picked: Vec<(i64, usize)> = heap.into_vec();
            picked.sort_unstable();
            out.push(picked.into_iter().map(|(_, idx)| idx).collect());
        }
    }
    // Keep the one-entry-per-anchor contract even when stopped early.
    out.resize_with(anchors.len(), Vec::new);
    out
}

fn is_sorted(rs: &[GRegion]) -> bool {
    rs.windows(2).all(|w| (w[0].left, w[0].right) <= (w[1].left, w[1].right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::Strand;

    fn r(l: u64, rr: u64) -> GRegion {
        GRegion::new("chr1", l, rr, Strand::Unstranded)
    }

    fn collect_pairs(f: impl FnOnce(&mut dyn FnMut(usize, usize))) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        f(&mut |i, j| out.push((i, j)));
        out.sort_unstable();
        out
    }

    #[test]
    fn sort_merge_matches_naive() {
        let left = vec![r(0, 10), r(5, 20), r(30, 40), r(40, 41)];
        let right = vec![r(0, 3), r(8, 9), r(15, 35), r(39, 45), r(100, 110)];
        let naive = collect_pairs(|e| overlap_pairs_naive(&left, &right, e));
        let merge = collect_pairs(|e| overlap_pairs_sort_merge(&left, &right, e));
        assert_eq!(naive, merge);
        assert!(!naive.is_empty());
    }

    #[test]
    fn binned_matches_naive_across_widths() {
        let left = vec![r(0, 250), r(90, 110), r(100, 100), r(300, 301)];
        let right = vec![r(50, 150), r(100, 400), r(100, 100), r(299, 302)];
        let naive = collect_pairs(|e| overlap_pairs_naive(&left, &right, e));
        for width in [1, 7, 100, 1000, 1_000_000] {
            let binned =
                collect_pairs(|e| overlap_pairs_binned(&left, &right, Binner::new(width), e));
            assert_eq!(naive, binned, "width {width}");
        }
    }

    #[test]
    fn gap_pairs_include_nearby() {
        let left = vec![r(0, 10)];
        let right = vec![r(5, 8), r(15, 20), r(25, 30)];
        let got = collect_pairs(|e| gap_pairs_sort_merge(&left, &right, 5, e));
        // [5,8) overlap ok; distance to [15,20) = 5 ok; [25,30) = 15 no.
        assert_eq!(got, vec![(0, 0), (0, 1)]);
        let naive = collect_pairs(|e| gap_pairs_naive(&left, &right, 5, e));
        let mut naive_sorted = naive;
        naive_sorted.sort_unstable();
        assert_eq!(got, naive_sorted);
    }

    #[test]
    fn coverage_simple_stack() {
        // Figure-4-style accumulation: three overlapping intervals.
        let segs = coverage_segments(&[(0, 10), (5, 15), (5, 8)]);
        assert_eq!(
            segs,
            vec![
                CovSeg { left: 0, right: 5, acc: 1 },
                CovSeg { left: 5, right: 8, acc: 3 },
                CovSeg { left: 8, right: 10, acc: 2 },
                CovSeg { left: 10, right: 15, acc: 1 },
            ]
        );
    }

    #[test]
    fn coverage_skips_zero_length_and_empty() {
        assert!(coverage_segments(&[]).is_empty());
        assert!(coverage_segments(&[(5, 5)]).is_empty());
    }

    #[test]
    fn coverage_disjoint_gap() {
        let segs = coverage_segments(&[(0, 5), (10, 15)]);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1], CovSeg { left: 10, right: 15, acc: 1 });
    }

    #[test]
    fn merge_cover_joins_adjacent_qualifying_segments() {
        let segs = coverage_segments(&[(0, 10), (5, 15)]);
        // acc >= 1 everywhere: one merged region with max acc 2.
        assert_eq!(merge_cover(&segs, 1, usize::MAX), vec![(0, 15, 2)]);
        // acc >= 2 only in the middle.
        assert_eq!(merge_cover(&segs, 2, usize::MAX), vec![(5, 10, 2)]);
        // acc == 1: two flanks, NOT merged across the acc-2 middle.
        assert_eq!(merge_cover(&segs, 1, 1), vec![(0, 5, 1), (10, 15, 1)]);
    }

    #[test]
    fn interruptible_kernels_stop_early_and_match_when_not_stopped() {
        let left: Vec<GRegion> = (0..100).map(|i| r(i * 10, i * 10 + 15)).collect();
        let right = left.clone();
        // stop = never: identical output to the plain kernels.
        let plain = collect_pairs(|e| overlap_pairs_sort_merge(&left, &right, e));
        let interruptible =
            collect_pairs(|e| overlap_pairs_sort_merge_interruptible(&left, &right, || false, e));
        assert_eq!(plain, interruptible);
        // stop = immediately: no pairs at all.
        let mut n = 0;
        overlap_pairs_sort_merge_interruptible(&left, &right, || true, |_, _| n += 1);
        assert_eq!(n, 0);
        let mut n = 0;
        gap_pairs_sort_merge_interruptible(&left, &right, 50, || true, |_, _| n += 1);
        assert_eq!(n, 0);
        // stop after a few polls: strictly fewer pairs than the full run.
        let full = collect_pairs(|e| gap_pairs_sort_merge(&left, &right, 50, e));
        let mut polls = 0;
        let mut partial = 0;
        gap_pairs_sort_merge_interruptible(
            &left,
            &right,
            50,
            || {
                polls += 1;
                polls > 3
            },
            |_, _| partial += 1,
        );
        assert!(partial < full.len(), "{partial} pairs should be cut short of {}", full.len());
    }

    #[test]
    fn k_nearest_interruptible_keeps_shape() {
        let anchors: Vec<GRegion> = (0..10).map(|i| r(i * 100, i * 100 + 10)).collect();
        let others = anchors.clone();
        let full = k_nearest_interruptible(&anchors, &others, 2, || false);
        assert_eq!(full, k_nearest(&anchors, &others, 2));
        let mut polls = 0;
        let stopped = k_nearest_interruptible(&anchors, &others, 2, || {
            polls += 1;
            polls > 3
        });
        assert_eq!(stopped.len(), anchors.len(), "one entry per anchor even when stopped");
        assert!(stopped[0] == full[0] && stopped.last().unwrap().is_empty());
    }

    #[test]
    fn k_nearest_basic() {
        let anchors = vec![r(100, 110)];
        let others = vec![r(0, 10), r(80, 90), r(105, 108), r(150, 160), r(400, 410)];
        let got = k_nearest(&anchors, &others, 3);
        // Distances: 89, 10, overlap(0), 40, 290 → picks indices 2,1,3.
        assert_eq!(got[0], vec![2, 1, 3]);
    }

    #[test]
    fn k_nearest_prefix_pruning_correct_with_long_early_region() {
        // A very long region early in the list overlaps the anchor even
        // though many closer-left regions do not.
        let anchors = vec![r(1000, 1010)];
        let others = vec![r(0, 2000), r(500, 510), r(900, 910), r(960, 970)];
        let got = k_nearest(&anchors, &others, 1);
        assert_eq!(got[0], vec![0], "the overlapping long region wins");
    }

    #[test]
    fn k_nearest_k_zero_or_empty_others() {
        let anchors = vec![r(0, 10)];
        assert_eq!(k_nearest(&anchors, &[], 2), vec![Vec::<usize>::new()]);
        let others = vec![r(0, 5)];
        assert_eq!(k_nearest(&anchors, &others, 0), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn k_nearest_more_than_available() {
        let anchors = vec![r(50, 60)];
        let others = vec![r(0, 10), r(100, 110)];
        let got = k_nearest(&anchors, &others, 5);
        assert_eq!(got[0].len(), 2);
    }
}
