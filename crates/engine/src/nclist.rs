//! Nested containment lists (NCList) — an interval index for repeated
//! overlap queries.
//!
//! The sort-merge and binned kernels in [`crate::interval`] are
//! single-pass: they pay their cost per join. When the same region set
//! is probed repeatedly (feature-based region search §4.5, reference
//! annotations queried by many experiments), an index amortises the
//! build. NCList (Alekseyenko & Lee, 2007) stores intervals so that each
//! list is sorted by start with strictly nested intervals demoted to
//! sublists; a stabbing/overlap query binary-searches each level and
//! descends only into sublists that can intersect.

use nggc_gdm::{interval_overlap, GRegion};

/// One entry: the interval, its original index, and its sublist.
#[derive(Debug, Clone)]
struct Entry {
    left: u64,
    right: u64,
    /// Index into the original region slice.
    id: usize,
    /// Child list (intervals strictly contained in this one).
    children: Vec<Entry>,
}

/// A nested containment list over one chromosome's regions.
#[derive(Debug, Clone, Default)]
pub struct NcList {
    top: Vec<Entry>,
    len: usize,
}

impl NcList {
    /// Build from regions sorted in genome order (as produced by
    /// [`nggc_gdm::Sample::chrom_slice`]). `O(n)` after the sort.
    pub fn build(regions: &[GRegion]) -> NcList {
        debug_assert!(
            regions.windows(2).all(|w| (w[0].left, w[0].right) <= (w[1].left, w[1].right)),
            "NcList::build requires sorted input"
        );
        // Sorted by (left asc, right desc) puts containers before their
        // contents; a stack of open containers assigns nesting.
        let mut order: Vec<usize> = (0..regions.len()).collect();
        order.sort_by(|&a, &b| {
            regions[a].left.cmp(&regions[b].left).then(regions[b].right.cmp(&regions[a].right))
        });
        let mut top: Vec<Entry> = Vec::new();
        // Stack of (entry, path) — we store entries and fold them into
        // parents as they close.
        let mut stack: Vec<Entry> = Vec::new();
        let flush = |stack: &mut Vec<Entry>, top: &mut Vec<Entry>, upto_left: u64| {
            while let Some(open) = stack.last() {
                if open.right > upto_left {
                    break;
                }
                let closed = stack.pop().expect("non-empty");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(closed),
                    None => top.push(closed),
                }
            }
        };
        for &i in &order {
            let r = &regions[i];
            // Close every open interval that cannot contain r.
            // Containment requires open.right >= r.right; since order is
            // (left asc, right desc), open.right < r.right means open
            // ends before r does and cannot be an ancestor. Also close
            // strictly-before intervals.
            while let Some(open) = stack.last() {
                let contains = open.left <= r.left && r.right <= open.right;
                if contains {
                    break;
                }
                let closed = stack.pop().expect("non-empty");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(closed),
                    None => top.push(closed),
                }
            }
            stack.push(Entry { left: r.left, right: r.right, id: i, children: Vec::new() });
        }
        flush(&mut stack, &mut top, u64::MAX);
        NcList { top, len: regions.len() }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visit the original indices of every interval overlapping
    /// `[left, right)` (half-open, with the zero-length conventions of
    /// [`interval_overlap`]).
    pub fn overlaps(&self, left: u64, right: u64, mut visit: impl FnMut(usize)) {
        Self::query_list(&self.top, left, right, &mut visit);
    }

    /// Collect the overlapping indices (sorted).
    pub fn overlaps_vec(&self, left: u64, right: u64) -> Vec<usize> {
        let mut out = Vec::new();
        self.overlaps(left, right, |i| out.push(i));
        out.sort_unstable();
        out
    }

    fn query_list(list: &[Entry], left: u64, right: u64, visit: &mut impl FnMut(usize)) {
        // Each level is sorted by start; within a level, an entry's
        // subtree spans [entry.left, entry.right). Binary search to the
        // first entry whose interval could still overlap, then scan while
        // starts precede the query end.
        let from = list.partition_point(|e| e.right < left && e.left != e.right);
        for e in &list[from..] {
            if e.left > right || (e.left == right && left != right && e.left != e.right) {
                break;
            }
            if interval_overlap(e.left, e.right, left, right) {
                visit(e.id);
            }
            // Children are contained in e, so they can only overlap when
            // e's span intersects the query at all.
            if e.left <= right && left <= e.right {
                Self::query_list(&e.children, left, right, visit);
            }
        }
    }

    /// Maximum nesting depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn d(list: &[Entry]) -> usize {
            list.iter().map(|e| 1 + d(&e.children)).max().unwrap_or(0)
        }
        d(&self.top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::overlap_pairs_naive;
    use nggc_gdm::Strand;

    fn r(l: u64, rr: u64) -> GRegion {
        GRegion::new("chr1", l, rr, Strand::Unstranded)
    }

    fn sorted(mut rs: Vec<GRegion>) -> Vec<GRegion> {
        rs.sort_by(|a, b| a.cmp_coords(b));
        rs
    }

    #[test]
    fn nested_structure_and_queries() {
        // Deep nesting: [0,100) ⊃ [10,90) ⊃ [20,80), plus siblings.
        let regions = sorted(vec![r(0, 100), r(10, 90), r(20, 80), r(150, 160), r(30, 40)]);
        let idx = NcList::build(&regions);
        assert_eq!(idx.len(), 5);
        assert!(idx.depth() >= 3, "nesting recognised: depth {}", idx.depth());
        assert_eq!(idx.overlaps_vec(25, 35).len(), 4, "all nested levels hit");
        assert_eq!(idx.overlaps_vec(95, 99), vec![0], "only the outermost");
        assert_eq!(idx.overlaps_vec(150, 151).len(), 1);
        assert!(idx.overlaps_vec(200, 300).is_empty());
    }

    #[test]
    fn matches_naive_on_many_shapes() {
        // Deterministic pseudo-random workload.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        let regions: Vec<GRegion> = sorted(
            (0..400)
                .map(|_| {
                    let l = next() % 10_000;
                    let w = next() % 500;
                    r(l, l + w)
                })
                .collect(),
        );
        let idx = NcList::build(&regions);
        let queries: Vec<GRegion> = (0..100)
            .map(|_| {
                let l = next() % 10_000;
                let w = next() % 800;
                r(l, l + w)
            })
            .collect();
        for q in &queries {
            let got = idx.overlaps_vec(q.left, q.right);
            let mut expect = Vec::new();
            overlap_pairs_naive(std::slice::from_ref(q), &regions, |_, j| expect.push(j));
            expect.sort_unstable();
            assert_eq!(got, expect, "query {}..{}", q.left, q.right);
        }
    }

    #[test]
    fn zero_length_intervals() {
        let regions = sorted(vec![r(5, 5), r(0, 10), r(10, 20)]);
        let idx = NcList::build(&regions);
        // Point query inside [0,10) hits it and the point itself.
        assert_eq!(idx.overlaps_vec(5, 5).len(), 2);
        // Query [10,10) inside [10,20) only.
        assert_eq!(idx.overlaps_vec(10, 10).len(), 1);
    }

    #[test]
    fn empty_and_single() {
        let idx = NcList::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.overlaps_vec(0, 10).is_empty());
        let idx = NcList::build(&[r(3, 7)]);
        assert_eq!(idx.overlaps_vec(0, 5), vec![0]);
        assert!(idx.overlaps_vec(7, 9).is_empty(), "touching is not overlap");
    }
}
