//! Cooperative interruption: cancellation, deadlines, memory budgets.
//!
//! The engine has no supervisor process to kill a runaway kernel, so
//! every bound is **cooperative**: [`InterruptState`] holds the limits
//! and the code doing the work polls it at checkpoints. The state is
//! deliberately error-agnostic — it reports *what* tripped via
//! [`Interrupt`], and higher layers (the query governor in `nggc-core`)
//! translate that into their own typed errors with plan-node context.
//!
//! Polling is cheap by construction: a relaxed atomic load for the
//! cancel flag, a saturating `Instant` comparison for the deadline, and
//! no locks anywhere, so hot loops can afford a check every few thousand
//! iterations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an interruptible computation was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// Someone called [`CancelToken::cancel`] (e.g. Ctrl-C).
    Cancelled,
    /// The wall-clock deadline elapsed.
    DeadlineExceeded,
    /// A charge would have pushed accounted memory past the budget.
    MemoryExhausted {
        /// Bytes the rejected charge asked for.
        requested: u64,
        /// The configured budget in bytes.
        budget: u64,
        /// Bytes already charged when the request was rejected.
        charged: u64,
    },
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
            Interrupt::MemoryExhausted { requested, budget, charged } => write!(
                f,
                "memory budget exhausted (requested {requested} B, budget {budget} B, \
                 already charged {charged} B)"
            ),
        }
    }
}

/// Shared interruption state for one governed computation.
///
/// Create one per query, wrap it in an [`Arc`], and hand clones to
/// everything that should honor the same limits. All methods are safe to
/// call concurrently from any thread.
#[derive(Debug)]
pub struct InterruptState {
    cancelled: AtomicBool,
    started: Instant,
    deadline: Option<Instant>,
    limit: Option<Duration>,
    budget: Option<u64>,
    charged: AtomicU64,
    peak: AtomicU64,
}

impl InterruptState {
    /// Unbounded state: never trips unless [`cancelled`](Self::cancel).
    pub fn new() -> InterruptState {
        InterruptState {
            cancelled: AtomicBool::new(false),
            started: Instant::now(),
            deadline: None,
            limit: None,
            budget: None,
            charged: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Add a wall-clock deadline, measured from now.
    pub fn with_deadline(mut self, limit: Duration) -> InterruptState {
        self.deadline = Some(self.started + limit);
        self.limit = Some(limit);
        self
    }

    /// Add a memory budget in bytes (see [`charge`](Self::charge)).
    pub fn with_budget(mut self, bytes: u64) -> InterruptState {
        self.budget = Some(bytes);
        self
    }

    /// Request cancellation. Idempotent; takes effect at the next poll.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Cheap checkpoint: `Some` if the computation should stop now
    /// (cancelled or past deadline). Does **not** consider memory — that
    /// trips at [`charge`](Self::charge) time.
    pub fn poll(&self) -> Option<Interrupt> {
        if self.is_cancelled() {
            return Some(Interrupt::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        None
    }

    /// [`poll`](Self::poll) as a `Result`, for `?`-style checkpoints.
    pub fn check(&self) -> Result<(), Interrupt> {
        match self.poll() {
            Some(i) => Err(i),
            None => Ok(()),
        }
    }

    /// Charge `bytes` against the budget. On success the charge sticks
    /// (release it with [`release`](Self::release) when the allocation
    /// is freed); on rejection nothing is charged and the computation
    /// should abort with the returned [`Interrupt::MemoryExhausted`].
    pub fn charge(&self, bytes: u64) -> Result<(), Interrupt> {
        let prev = self.charged.fetch_add(bytes, Ordering::AcqRel);
        let now = prev.saturating_add(bytes);
        if let Some(budget) = self.budget {
            if now > budget {
                // Roll back so the accounting stays truthful for the
                // partial-progress report.
                self.charged.fetch_sub(bytes, Ordering::AcqRel);
                return Err(Interrupt::MemoryExhausted { requested: bytes, budget, charged: prev });
            }
        }
        self.peak.fetch_max(now, Ordering::AcqRel);
        Ok(())
    }

    /// Release a previously successful charge of `bytes` (saturating —
    /// over-release clamps to zero rather than wrapping).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.charged.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.charged.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Bytes currently charged.
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Acquire)
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Acquire)
    }

    /// The configured memory budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The configured deadline duration, if any.
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// Wall time since the state was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for InterruptState {
    fn default() -> InterruptState {
        InterruptState::new()
    }
}

/// Cloneable handle that can *only* request cancellation — safe to hand
/// to signal handlers, watcher threads, and timers.
#[derive(Debug, Clone)]
pub struct CancelToken {
    state: Arc<InterruptState>,
}

impl CancelToken {
    /// Token cancelling `state`.
    pub fn new(state: Arc<InterruptState>) -> CancelToken {
        CancelToken { state }
    }

    /// Request cancellation of the associated computation.
    pub fn cancel(&self) {
        self.state.cancel();
    }

    /// Has cancellation already been requested?
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let st = InterruptState::new();
        assert_eq!(st.poll(), None);
        st.charge(u64::MAX / 2).unwrap();
        assert_eq!(st.poll(), None);
        assert_eq!(st.peak(), u64::MAX / 2);
    }

    #[test]
    fn cancel_trips_poll() {
        let st = Arc::new(InterruptState::new());
        let token = CancelToken::new(Arc::clone(&st));
        assert_eq!(st.poll(), None);
        token.cancel();
        assert_eq!(st.poll(), Some(Interrupt::Cancelled));
        assert!(token.is_cancelled());
        assert!(st.check().is_err());
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let st = InterruptState::new().with_deadline(Duration::from_millis(20));
        assert_eq!(st.poll(), None);
        assert!(st.remaining().unwrap() <= Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(st.poll(), Some(Interrupt::DeadlineExceeded));
        assert_eq!(st.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_wins_over_deadline() {
        let st = InterruptState::new().with_deadline(Duration::ZERO);
        st.cancel();
        assert_eq!(st.poll(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn budget_accounting_charges_and_releases() {
        let st = InterruptState::new().with_budget(100);
        st.charge(60).unwrap();
        assert_eq!(st.charged(), 60);
        let err = st.charge(50).unwrap_err();
        assert_eq!(err, Interrupt::MemoryExhausted { requested: 50, budget: 100, charged: 60 });
        // Rejected charge rolled back.
        assert_eq!(st.charged(), 60);
        st.release(30);
        assert_eq!(st.charged(), 30);
        st.charge(50).unwrap();
        assert_eq!(st.charged(), 80);
        assert_eq!(st.peak(), 80, "peak tracks the high-water mark of accepted charges");
    }

    #[test]
    fn release_saturates_at_zero() {
        let st = InterruptState::new().with_budget(10);
        st.charge(5).unwrap();
        st.release(500);
        assert_eq!(st.charged(), 0);
    }

    #[test]
    fn poll_is_cheap_when_unbounded() {
        let st = InterruptState::new();
        let t0 = Instant::now();
        for _ in 0..1_000_000 {
            assert!(st.poll().is_none());
        }
        // Generous bound — only guards against accidental syscalls/locks.
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
