//! Dataset-level parallel execution helpers.
//!
//! GMQL operations "implicitly iterate over all the samples of their
//! operand datasets" (paper §2); sample iteration is therefore the outer
//! parallel dimension, and per-chromosome sharding the inner one —
//! exactly the (sample × genome-partition) decomposition the GMQL cloud
//! implementations use. [`ExecContext`] bundles the pool and binning
//! configuration every operator receives.

use crate::binning::Binner;
use crate::interrupt::{Interrupt, InterruptState};
use crate::pool::WorkerPool;
use nggc_gdm::{Chrom, GRegion, Sample};
use std::sync::Arc;

/// How many hot-loop iterations an operator kernel may run between
/// interrupt polls. A power of two so the check compiles to a mask.
pub const CHECKPOINT_STRIDE: usize = 1024;

/// Execution context shared by all operators of a query.
#[derive(Debug, Clone)]
pub struct ExecContext {
    pool: Arc<WorkerPool>,
    binner: Binner,
    interrupt: Option<Arc<InterruptState>>,
}

impl ExecContext {
    /// Context over an existing pool with the default bin width.
    pub fn new(pool: Arc<WorkerPool>) -> ExecContext {
        ExecContext { pool, binner: Binner::default(), interrupt: None }
    }

    /// Context with `workers` threads and the default bin width.
    pub fn with_workers(workers: usize) -> ExecContext {
        ExecContext::new(Arc::new(WorkerPool::new(workers)))
    }

    /// Serial context (one worker) — the baseline of experiment E6.
    pub fn serial() -> ExecContext {
        ExecContext::with_workers(1)
    }

    /// Override the genome bin width (experiment E10 sweeps this).
    pub fn with_bin_width(mut self, width: u64) -> ExecContext {
        self.binner = Binner::new(width);
        self
    }

    /// Attach cooperative interruption state. Operator kernels poll it
    /// at [`CHECKPOINT_STRIDE`] granularity via
    /// [`interrupted`](Self::interrupted)/[`checkpoint`](Self::checkpoint),
    /// and the per-chromosome fan-out skips kernels wholesale once the
    /// state has tripped.
    pub fn with_interrupt(mut self, state: Arc<InterruptState>) -> ExecContext {
        self.interrupt = Some(state);
        self
    }

    /// The attached interruption state, if any.
    pub fn interrupt_state(&self) -> Option<&Arc<InterruptState>> {
        self.interrupt.as_ref()
    }

    /// Cheap hot-loop check: should the current kernel stop early?
    /// Kernels that observe `true` truncate their output and return;
    /// the caller (operator / executor) raises the authoritative typed
    /// error by consulting [`checkpoint`](Self::checkpoint).
    #[inline]
    pub fn interrupted(&self) -> bool {
        match &self.interrupt {
            Some(st) => st.poll().is_some(),
            None => false,
        }
    }

    /// Checkpoint as a `Result`, for `?`-style use between stages.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), Interrupt> {
        match &self.interrupt {
            Some(st) => st.check(),
            None => Ok(()),
        }
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The genome binner.
    pub fn binner(&self) -> Binner {
        self.binner
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Transform every sample in parallel (the implicit iteration of
    /// unary GMQL operators). Order is preserved.
    pub fn map_samples<R, F>(&self, samples: &[Sample], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Sample) -> R + Sync,
    {
        self.pool.parallel_map_slice(samples, f)
    }

    /// Transform every (reference sample, experiment sample) pair in
    /// parallel — the iteration shape of MAP and JOIN, which produce one
    /// result sample per pair. Results are in row-major order
    /// (`refs[0]×exps[0..]`, then `refs[1]×exps[0..]`, …).
    pub fn map_sample_pairs<R, F>(&self, refs: &[Sample], exps: &[Sample], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Sample, &Sample) -> R + Sync,
    {
        if refs.is_empty() || exps.is_empty() {
            return Vec::new();
        }
        // Dispatch by flat index instead of materialising the refs×exps
        // pair Vec up front: a huge cross-product costs O(workers) setup
        // allocation here, not O(n·m) pair references before any work
        // starts.
        let m = exps.len();
        self.pool.parallel_map_range(refs.len() * m, |i| f(&refs[i / m], &exps[i % m]))
    }

    /// Run a per-chromosome kernel over two samples in parallel and
    /// concatenate the per-chromosome outputs in genome order. The
    /// chromosome list is the union of both samples' chromosomes.
    pub fn map_common_chroms<R, F>(&self, a: &Sample, b: &Sample, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Chrom, &[GRegion], &[GRegion]) -> Vec<R> + Sync,
    {
        let chroms = union_chroms(a, b);
        let per_chrom = self.pool.parallel_map(chroms, |c| {
            // Checkpoint at the job boundary: once the interrupt trips,
            // queued chromosome kernels become no-ops instead of running
            // to completion, so cancellation latency is bounded by one
            // kernel, not the whole fan-out.
            if self.interrupted() {
                return (c, Vec::new());
            }
            let out = f(&c, a.chrom_slice(&c), b.chrom_slice(&c));
            (c, out)
        });
        per_chrom.into_iter().flat_map(|(_, v)| v).collect()
    }
}

/// Union of the chromosomes of two samples, in genome order.
pub fn union_chroms(a: &Sample, b: &Sample) -> Vec<Chrom> {
    let mut out = a.chromosomes();
    out.extend(b.chromosomes());
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::Strand;

    fn sample(name: &str, regions: Vec<(&str, u64, u64)>) -> Sample {
        Sample::new(name, "T").with_regions(
            regions
                .into_iter()
                .map(|(c, l, r)| GRegion::new(c, l, r, Strand::Unstranded))
                .collect(),
        )
    }

    #[test]
    fn map_samples_preserves_order() {
        let ctx = ExecContext::with_workers(4);
        let samples: Vec<Sample> =
            (0..20).map(|i| sample(&format!("s{i}"), vec![("chr1", i, i + 1)])).collect();
        let names = ctx.map_samples(&samples, |s| s.name.clone());
        assert_eq!(names[0], "s0");
        assert_eq!(names[19], "s19");
    }

    #[test]
    fn map_sample_pairs_row_major() {
        let ctx = ExecContext::with_workers(2);
        let refs = vec![sample("r0", vec![]), sample("r1", vec![])];
        let exps = vec![sample("e0", vec![]), sample("e1", vec![]), sample("e2", vec![])];
        let got = ctx.map_sample_pairs(&refs, &exps, |r, e| format!("{}x{}", r.name, e.name));
        assert_eq!(got, vec!["r0xe0", "r0xe1", "r0xe2", "r1xe0", "r1xe1", "r1xe2"]);
    }

    #[test]
    fn map_common_chroms_covers_union_in_order() {
        let ctx = ExecContext::with_workers(3);
        let a = sample("a", vec![("chr2", 0, 5), ("chr10", 0, 5)]);
        let b = sample("b", vec![("chr1", 0, 5), ("chr2", 3, 9)]);
        let out = ctx.map_common_chroms(&a, &b, |c, ra, rb| {
            vec![format!("{}:{}x{}", c, ra.len(), rb.len())]
        });
        assert_eq!(out, vec!["chr1:0x1", "chr2:1x1", "chr10:1x0"]);
    }

    #[test]
    fn serial_context_has_one_worker() {
        assert_eq!(ExecContext::serial().workers(), 1);
    }

    #[test]
    fn context_without_interrupt_never_trips() {
        let ctx = ExecContext::with_workers(2);
        assert!(!ctx.interrupted());
        assert!(ctx.checkpoint().is_ok());
        assert!(ctx.interrupt_state().is_none());
    }

    #[test]
    fn tripped_interrupt_skips_chrom_kernels() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let st = Arc::new(InterruptState::new());
        st.cancel();
        let ctx = ExecContext::with_workers(2).with_interrupt(Arc::clone(&st));
        assert!(ctx.interrupted());
        assert_eq!(ctx.checkpoint(), Err(Interrupt::Cancelled));
        let ran = AtomicUsize::new(0);
        let a = sample("a", vec![("chr1", 0, 5), ("chr2", 0, 5)]);
        let b = sample("b", vec![("chr1", 3, 9)]);
        let out: Vec<u64> = ctx.map_common_chroms(&a, &b, |_, _, _| {
            ran.fetch_add(1, Ordering::Relaxed);
            vec![1]
        });
        assert!(out.is_empty(), "tripped context must skip kernels");
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }
}
