//! Parallel sorting on the worker pool.
//!
//! MERGE, GROUP and COVER pool regions from many samples and re-sort them
//! into genome order; at the paper's cardinalities (tens of millions of
//! regions) that sort dominates, so the engine provides a parallel merge
//! sort: chunks sort concurrently on the pool, then a tournament-free
//! pairwise merge (also parallel across pairs) combines them.

use crate::pool::WorkerPool;
use std::cmp::Ordering;

/// Minimum chunk size; below this a serial sort wins.
const MIN_CHUNK: usize = 8_192;

/// Sort `items` by `cmp` using the pool. Stable. Falls back to the
/// standard serial stable sort for small inputs or single-worker pools.
pub fn parallel_sort_by<T, F>(pool: &WorkerPool, items: &mut Vec<T>, cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = items.len();
    if n < 2 * MIN_CHUNK || pool.workers() == 1 {
        items.sort_by(cmp);
        return;
    }
    // Split into one chunk per worker (at least MIN_CHUNK each).
    let chunks = (n / MIN_CHUNK).clamp(2, pool.workers() * 2);
    let chunk_len = n.div_ceil(chunks);
    let mut runs: Vec<Vec<T>> = Vec::with_capacity(chunks);
    {
        let mut rest = std::mem::take(items);
        while !rest.is_empty() {
            let tail = rest.split_off(rest.len().min(chunk_len));
            runs.push(rest);
            rest = tail;
        }
    }
    // Sort each run in parallel.
    let mut runs: Vec<Vec<T>> = pool.parallel_map(runs, |mut run| {
        run.sort_by(&cmp);
        run
    });
    // Pairwise merge rounds, each round parallel across pairs.
    while runs.len() > 1 {
        let mut pairs: Vec<(Vec<T>, Option<Vec<T>>)> = Vec::with_capacity(runs.len() / 2 + 1);
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = pool.parallel_map(pairs, |(a, b)| match b {
            Some(b) => merge_by(a, b, &cmp),
            None => a,
        });
    }
    *items = runs.pop().unwrap_or_default();
}

/// Stable two-way merge.
fn merge_by<T, F>(a: Vec<T>, b: Vec<T>, cmp: &F) -> Vec<T>
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                // `a` precedes `b` on ties for stability.
                if cmp(x, y) == Ordering::Greater {
                    out.push(bi.next().expect("peeked"));
                } else {
                    out.push(ai.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ai.next().expect("peeked")),
            (None, Some(_)) => out.push(bi.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_large_random_input() {
        let pool = WorkerPool::new(4);
        // Deterministic pseudo-random values.
        let mut xs: Vec<u64> =
            (0..100_000u64).map(|i| i.wrapping_mul(6364136223846793005).rotate_left(17)).collect();
        let mut expect = xs.clone();
        expect.sort_unstable();
        parallel_sort_by(&pool, &mut xs, |a, b| a.cmp(b));
        assert_eq!(xs, expect);
    }

    #[test]
    fn small_inputs_and_edge_cases() {
        let pool = WorkerPool::new(4);
        let mut empty: Vec<i32> = vec![];
        parallel_sort_by(&pool, &mut empty, |a, b| a.cmp(b));
        assert!(empty.is_empty());
        let mut one = vec![5];
        parallel_sort_by(&pool, &mut one, |a, b| a.cmp(b));
        assert_eq!(one, vec![5]);
        let mut few = vec![3, 1, 2];
        parallel_sort_by(&pool, &mut few, |a, b| a.cmp(b));
        assert_eq!(few, vec![1, 2, 3]);
    }

    #[test]
    fn stability_preserved() {
        let pool = WorkerPool::new(4);
        // (key, original index): equal keys must keep index order.
        let mut xs: Vec<(u32, usize)> = (0..50_000).map(|i| ((i % 7) as u32, i)).collect();
        parallel_sort_by(&pool, &mut xs, |a, b| a.0.cmp(&b.0));
        for w in xs.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn already_sorted_and_reversed() {
        let pool = WorkerPool::new(3);
        let mut asc: Vec<u32> = (0..40_000).collect();
        parallel_sort_by(&pool, &mut asc, |a, b| a.cmp(b));
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let mut desc: Vec<u32> = (0..40_000).rev().collect();
        parallel_sort_by(&pool, &mut desc, |a, b| a.cmp(b));
        assert!(desc.windows(2).all(|w| w[0] <= w[1]));
    }
}
