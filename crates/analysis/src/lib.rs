//! # `nggc-analysis` — from query results to biological insight
//!
//! §4.1 of the paper bridges GMQL to data analysis: a MAP result is a
//! **genome space** (regions × experiments matrix, Figure 4) that can be
//! read as an adjacency structure and converted into a **gene network**,
//! clustered, or tested for statistical enrichment:
//!
//! * [`genome_space`] — build the matrix from MAP results;
//! * [`network`] — correlation networks, degrees, hubs, components;
//! * [`cluster`] — k-means (k-means++ seeding) over region profiles;
//! * [`pca`] — principal components via power iteration (latent analysis);
//! * [`browser`] — ASCII genome-browser tracks for terminal inspection;
//! * [`enrichment`] — GREAT-style binomial / hypergeometric statistics
//!   (§4.3's "powerful statistics to indicate the significance of query
//!   results").

#![warn(missing_docs)]

pub mod browser;
pub mod cluster;
pub mod enrichment;
pub mod genome_space;
pub mod hierarchical;
pub mod network;
pub mod pca;

pub use browser::{render_tracks, Window};
pub use cluster::{kmeans, silhouette, Clustering};
pub use enrichment::{
    binomial_sf, hypergeometric_sf, ln_choose, ln_gamma, region_enrichment, Enrichment,
};
pub use genome_space::{GenomeSpace, GenomeSpaceError, RegionKey};
pub use hierarchical::{hierarchical, Dendrogram, Linkage, Merge};
pub use network::{pearson, Network};
pub use pca::{pca, Pca};
