//! Agglomerative hierarchical clustering of genome-space rows.
//!
//! Complements k-means (§4.1's "advanced data mining") with a
//! dendrogram-producing method: useful when the number of co-activity
//! programmes is unknown. Single and complete linkage over Euclidean
//! distances; `O(n² log n)` via a sorted merge queue — fine for the
//! region counts genome spaces carry after a MAP over genes.

use crate::genome_space::GenomeSpace;

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters (chains).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
}

/// One merge of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First cluster id (original rows are 0..n; merges create n, n+1, …).
    pub a: usize,
    /// Second cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Id of the new cluster.
    pub id: usize,
}

/// The clustering result: the full merge history.
#[derive(Debug, Clone, Default)]
pub struct Dendrogram {
    /// Merges in order of increasing distance.
    pub merges: Vec<Merge>,
    /// Number of original observations.
    pub n: usize,
}

impl Dendrogram {
    /// Cut the tree into (at most) `k` clusters: undo the last `k - 1`
    /// merges. Returns a cluster label per original row, labels densely
    /// renumbered from 0.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let k = k.clamp(1, self.n.max(1));
        // Union-find over the first n - k merges.
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let keep = self.n.saturating_sub(k);
        for m in self.merges.iter().take(keep) {
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = m.id;
            parent[rb] = m.id;
        }
        let mut labels = Vec::with_capacity(self.n);
        let mut dense: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for i in 0..self.n {
            let root = find(&mut parent, i);
            let next = dense.len();
            labels.push(*dense.entry(root).or_insert(next));
        }
        labels
    }
}

/// Cluster the genome-space rows. Deterministic; ties merge in index
/// order.
pub fn hierarchical(space: &GenomeSpace, linkage: Linkage) -> Dendrogram {
    let n = space.values.len();
    if n == 0 {
        return Dendrogram::default();
    }
    // Active clusters: id → member rows.
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
    };
    let linkage_dist = |xs: &[usize], ys: &[usize]| -> f64 {
        let mut best = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => 0.0,
        };
        for &x in xs {
            for &y in ys {
                let d = dist(&space.values[x], &space.values[y]);
                best = match linkage {
                    Linkage::Single => best.min(d),
                    Linkage::Complete => best.max(d),
                };
            }
        }
        best
    };

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut active: Vec<usize> = (0..n).collect();
    while active.len() > 1 {
        // Find the closest active pair (quadratic scan; n is modest).
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &a) in active.iter().enumerate() {
            for &b in &active[ai + 1..] {
                let d = linkage_dist(
                    members[a].as_ref().expect("active"),
                    members[b].as_ref().expect("active"),
                );
                if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                    best = Some((d, a, b));
                }
            }
        }
        let (d, a, b) = best.expect("at least one pair");
        let id = members.len();
        let mut merged = members[a].take().expect("active");
        merged.extend(members[b].take().expect("active"));
        members.push(Some(merged));
        active.retain(|&x| x != a && x != b);
        active.push(id);
        merges.push(Merge { a, b, distance: d, id });
    }
    Dendrogram { merges, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome_space::RegionKey;
    use nggc_gdm::{Chrom, Strand};

    fn space(values: Vec<Vec<f64>>) -> GenomeSpace {
        let n = values.len();
        GenomeSpace {
            regions: (0..n)
                .map(|i| RegionKey {
                    chrom: Chrom::new("chr1"),
                    left: i as u64,
                    right: i as u64 + 1,
                    strand: Strand::Unstranded,
                    label: None,
                })
                .collect(),
            experiments: vec!["e".into(); values.first().map(Vec::len).unwrap_or(0)],
            values,
        }
    }

    #[test]
    fn two_obvious_clusters_cut_correctly() {
        let gs = space(vec![vec![0.0], vec![0.5], vec![1.0], vec![100.0], vec![100.5]]);
        for linkage in [Linkage::Single, Linkage::Complete] {
            let tree = hierarchical(&gs, linkage);
            assert_eq!(tree.merges.len(), 4);
            let labels = tree.cut(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn merge_distances_nondecreasing_for_single_linkage() {
        let gs = space(vec![vec![1.0], vec![4.0], vec![9.0], vec![16.0], vec![25.0]]);
        let tree = hierarchical(&gs, Linkage::Single);
        for w in tree.merges.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-9);
        }
    }

    #[test]
    fn single_vs_complete_differ_on_chains() {
        // A chain 0-1-2-3 with gaps of 1 plus an outlier: single linkage
        // keeps the chain together longer than complete linkage.
        let gs = space(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![10.0]]);
        let single = hierarchical(&gs, Linkage::Single);
        let complete = hierarchical(&gs, Linkage::Complete);
        let last_single = single.merges.last().unwrap().distance;
        let last_complete = complete.merges.last().unwrap().distance;
        assert!(last_complete >= last_single, "complete linkage stretches further");
    }

    #[test]
    fn cut_extremes() {
        let gs = space(vec![vec![0.0], vec![1.0], vec![2.0]]);
        let tree = hierarchical(&gs, Linkage::Single);
        assert_eq!(tree.cut(1), vec![0, 0, 0]);
        let all = tree.cut(3);
        let distinct: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), 3);
        assert_eq!(tree.cut(99).len(), 3, "k clamps");
    }

    #[test]
    fn empty_input() {
        let gs = space(vec![]);
        let tree = hierarchical(&gs, Linkage::Single);
        assert!(tree.merges.is_empty());
        assert!(tree.cut(2).is_empty());
    }
}
