//! Gene networks from genome spaces (Figure 4, right).
//!
//! "Such table can be also interpreted as an adjacency matrix
//! representing a network, where regions are nodes and arcs have a
//! weight obtained by further aggregating properties across experiments"
//! (§4.1). Edge weights here are Pearson correlations of region profiles
//! across experiments; a threshold keeps the strong interactions.

use crate::genome_space::GenomeSpace;
use std::collections::HashMap;

/// A weighted undirected network over genome-space regions.
#[derive(Debug, Clone)]
pub struct Network {
    /// Node labels (region keys rendered).
    pub nodes: Vec<String>,
    /// Edges `(a, b, weight)` with `a < b`.
    pub edges: Vec<(usize, usize, f64)>,
}

/// Pearson correlation of two equal-length profiles; 0 when degenerate.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 1e-12 || vb <= 1e-12 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

impl Network {
    /// Build the co-activity network: an edge joins regions whose
    /// cross-experiment profiles correlate at least `threshold`
    /// (absolute value).
    pub fn from_genome_space(space: &GenomeSpace, threshold: f64) -> Network {
        let nodes: Vec<String> = space.regions.iter().map(|k| k.to_string()).collect();
        let mut edges = Vec::new();
        for i in 0..space.n_regions() {
            for j in (i + 1)..space.n_regions() {
                let w = pearson(space.row(i), space.row(j));
                if w.abs() >= threshold {
                    edges.push((i, j, w));
                }
            }
        }
        Network { nodes, edges }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of every node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0; self.nodes.len()];
        for (a, b, _) in &self.edges {
            deg[*a] += 1;
            deg[*b] += 1;
        }
        deg
    }

    /// The `k` highest-degree nodes (hubs), ties by index.
    pub fn hubs(&self, k: usize) -> Vec<(String, usize)> {
        let mut idx: Vec<(usize, usize)> = self.degrees().into_iter().enumerate().collect();
        idx.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        idx.truncate(k);
        idx.into_iter().map(|(i, d)| (self.nodes[i].clone(), d)).collect()
    }

    /// Connected components, as a node → component-id map plus count.
    pub fn components(&self) -> (Vec<usize>, usize) {
        let n = self.nodes.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (a, b, _) in &self.edges {
            let ra = find(&mut parent, *a);
            let rb = find(&mut parent, *b);
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut ids: HashMap<usize, usize> = HashMap::new();
        let mut labels = vec![0; n];
        for (i, label) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            let next_id = ids.len();
            *label = *ids.entry(root).or_insert(next_id);
        }
        let count = ids.len();
        (labels, count)
    }

    /// Mean edge weight (interaction strength summary).
    pub fn mean_weight(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|(_, _, w)| w.abs()).sum::<f64>() / self.edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome_space::RegionKey;
    use nggc_gdm::{Chrom, Strand};

    fn space(values: Vec<Vec<f64>>) -> GenomeSpace {
        let n = values.len();
        GenomeSpace {
            regions: (0..n)
                .map(|i| RegionKey {
                    chrom: Chrom::new("chr1"),
                    left: i as u64 * 10,
                    right: i as u64 * 10 + 5,
                    strand: Strand::Unstranded,
                    label: Some(format!("G{i}")),
                })
                .collect(),
            experiments: (0..values[0].len()).map(|i| format!("e{i}")).collect(),
            values,
        }
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0, "constant profile degenerates to 0");
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn correlated_regions_connect() {
        // G0 and G1 perfectly correlated, G2 anti-correlated, G3 flat.
        let gs = space(vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![5.0, 5.0, 5.0, 5.0],
        ]);
        let net = Network::from_genome_space(&gs, 0.9);
        assert_eq!(net.n_nodes(), 4);
        // |r|: (0,1)=1, (0,2)=1, (1,2)=1 → three edges; flat row joins none.
        assert_eq!(net.n_edges(), 3);
        let degrees = net.degrees();
        assert_eq!(degrees, vec![2, 2, 2, 0]);
        let (labels, count) = net.components();
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn hubs_ranked_by_degree() {
        let gs = space(vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.1]]);
        let net = Network::from_genome_space(&gs, 0.99);
        let hubs = net.hubs(1);
        assert_eq!(hubs.len(), 1);
        assert!(hubs[0].1 >= 1);
        assert!(net.mean_weight() > 0.9);
    }
}
