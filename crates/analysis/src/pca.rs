//! Principal component analysis of genome spaces.
//!
//! §4.1 points genome spaces at "advanced data mining and computational
//! intelligence", including latent analyses ("advanced latent semantic
//! analysis and topic modelling"). PCA is the workhorse latent method for
//! region × experiment matrices: projecting regions onto the first
//! components separates the dominant co-activity programmes. Implemented
//! via power iteration with deflation — no linear-algebra dependency.

use crate::genome_space::GenomeSpace;

/// Result of a PCA.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Principal axes (each of length = number of experiments), strongest
    /// first.
    pub components: Vec<Vec<f64>>,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
    /// Column means subtracted before analysis.
    pub means: Vec<f64>,
    /// Row scores: projection of each (centred) region onto each
    /// component; `scores[r][c]`.
    pub scores: Vec<Vec<f64>>,
}

/// Compute the first `k` principal components of the genome-space rows
/// (regions as observations, experiments as variables). Deterministic:
/// power iteration starts from a fixed vector.
pub fn pca(space: &GenomeSpace, k: usize, iterations: usize) -> Pca {
    let n = space.n_regions();
    let d = space.n_experiments();
    let k = k.min(d);
    if n == 0 || d == 0 || k == 0 {
        return Pca {
            components: vec![],
            explained_variance: vec![],
            means: vec![0.0; d],
            scores: vec![vec![]; n],
        };
    }

    // Centre the data.
    let mut means = vec![0.0; d];
    for row in &space.values {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let centred: Vec<Vec<f64>> = space
        .values
        .iter()
        .map(|row| row.iter().zip(&means).map(|(v, m)| v - m).collect())
        .collect();

    // Covariance matrix (d × d); d = number of experiments is small.
    // Triangle-indexed accumulation is clearest here.
    #[allow(clippy::needless_range_loop)]
    let cov = {
        let mut cov = vec![vec![0.0; d]; d];
        for row in &centred {
            for i in 0..d {
                for j in i..d {
                    cov[i][j] += row[i] * row[j];
                }
            }
        }
        let denom = (n.max(2) - 1) as f64;
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= denom;
                cov[j][i] = cov[i][j];
            }
        }
        cov
    };

    // Power iteration with deflation.
    let mut components = Vec::with_capacity(k);
    let mut explained = Vec::with_capacity(k);
    let mut work = cov;
    for comp_idx in 0..k {
        // Deterministic start, varying per component to escape
        // orthogonal-start stalls.
        let mut v: Vec<f64> = (0..d).map(|i| 1.0 + ((i + comp_idx) % 3) as f64 * 0.25).collect();
        normalize(&mut v);
        let mut eigenvalue = 0.0;
        for _ in 0..iterations {
            let mut next = vec![0.0; d];
            for (i, row) in work.iter().enumerate() {
                next[i] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            eigenvalue = norm(&next);
            if eigenvalue <= 1e-12 {
                break;
            }
            for x in &mut next {
                *x /= eigenvalue;
            }
            let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = next;
            if delta < 1e-12 {
                break;
            }
        }
        // Deflate: work -= λ v vᵀ.
        for i in 0..d {
            for j in 0..d {
                work[i][j] -= eigenvalue * v[i] * v[j];
            }
        }
        components.push(v);
        explained.push(eigenvalue);
    }

    let scores: Vec<Vec<f64>> = centred
        .iter()
        .map(|row| components.iter().map(|c| row.iter().zip(c).map(|(a, b)| a * b).sum()).collect())
        .collect();

    Pca { components, explained_variance: explained, means, scores }
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm(v);
    if n > 1e-12 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome_space::RegionKey;
    use nggc_gdm::{Chrom, Strand};

    fn space(values: Vec<Vec<f64>>) -> GenomeSpace {
        let n = values.len();
        GenomeSpace {
            regions: (0..n)
                .map(|i| RegionKey {
                    chrom: Chrom::new("chr1"),
                    left: i as u64,
                    right: i as u64 + 1,
                    strand: Strand::Unstranded,
                    label: None,
                })
                .collect(),
            experiments: (0..values.first().map(Vec::len).unwrap_or(0))
                .map(|i| format!("e{i}"))
                .collect(),
            values,
        }
    }

    #[test]
    fn first_component_follows_dominant_direction() {
        // Points along the (1, 1) diagonal with small noise orthogonal.
        let gs = space(vec![
            vec![1.0, 1.1],
            vec![2.0, 1.9],
            vec![3.0, 3.05],
            vec![4.0, 3.95],
            vec![5.0, 5.0],
        ]);
        let p = pca(&gs, 2, 200);
        let c0 = &p.components[0];
        let ratio = (c0[0] / c0[1]).abs();
        assert!((ratio - 1.0).abs() < 0.1, "first axis ≈ diagonal, got {c0:?}");
        assert!(
            p.explained_variance[0] > 10.0 * p.explained_variance[1],
            "diagonal dominates: {:?}",
            p.explained_variance
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let gs = space(vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 3.0, 1.0],
            vec![2.0, 1.0, 0.0],
            vec![1.5, 2.5, 2.0],
        ]);
        let p = pca(&gs, 3, 300);
        for (i, a) in p.components.iter().enumerate() {
            assert!((norm(a) - 1.0).abs() < 1e-6, "unit norm");
            for b in p.components.iter().skip(i + 1) {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-4, "orthogonal, dot = {dot}");
            }
        }
    }

    #[test]
    fn scores_separate_groups() {
        let gs = space(vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![10.0, 10.0], vec![10.1, 9.9]]);
        let p = pca(&gs, 1, 100);
        let s: Vec<f64> = p.scores.iter().map(|r| r[0]).collect();
        // The two groups land on opposite sides of the first component.
        assert!(s[0].signum() == s[1].signum());
        assert!(s[2].signum() == s[3].signum());
        assert!(s[0].signum() != s[2].signum());
    }

    #[test]
    fn degenerate_inputs() {
        let empty = space(vec![]);
        let p = pca(&empty, 2, 10);
        assert!(p.components.is_empty());
        let one = space(vec![vec![1.0, 2.0]]);
        let p = pca(&one, 5, 10);
        assert_eq!(p.components.len(), 2, "k clamps to dimensionality");
    }
}
