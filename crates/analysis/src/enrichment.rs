//! GREAT-style enrichment statistics.
//!
//! §4.3: "Custom queries will need to be augmented with suitable
//! mechanisms for reasoning about data; such services could imitate the
//! GREAT service ... which includes powerful statistics to indicate the
//! significance of query results" (paper ref [18]). This module
//! implements the two tests GREAT popularised for region sets:
//!
//! * the **binomial test** over genomic coverage — is the fraction of
//!   study regions hitting an annotation larger than the annotation's
//!   genomic fraction would predict?
//! * the **hypergeometric test** over gene/region counts — classic
//!   over-representation.

/// Natural log of the gamma function (Lanczos approximation, |err| <
/// 1e-10 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument");
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Upper-tail binomial p-value: `P[X >= k]` for `X ~ Bin(n, p)`.
pub fn binomial_sf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let mut total = 0.0f64;
    for i in k..=n {
        let ln_term = ln_choose(n, i) + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln();
        total += ln_term.exp();
    }
    total.min(1.0)
}

/// Upper-tail hypergeometric p-value: drawing `n` from a population of
/// `total` containing `successes` marked items, probability of seeing at
/// least `k` marked.
pub fn hypergeometric_sf(k: u64, total: u64, successes: u64, n: u64) -> f64 {
    assert!(successes <= total && n <= total, "invalid population");
    if k == 0 {
        return 1.0;
    }
    let hi = n.min(successes);
    if k > hi {
        return 0.0;
    }
    let denom = ln_choose(total, n);
    let mut total_p = 0.0f64;
    for i in k..=hi {
        // Need n - i failures from total - successes.
        if n - i > total - successes {
            continue;
        }
        let ln_term = ln_choose(successes, i) + ln_choose(total - successes, n - i) - denom;
        total_p += ln_term.exp();
    }
    total_p.min(1.0)
}

/// Result of a region-set enrichment test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Enrichment {
    /// Study regions hitting the annotation.
    pub hits: u64,
    /// Study region count.
    pub study_size: u64,
    /// Expected hits under the null.
    pub expected: f64,
    /// Fold enrichment (`hits / expected`).
    pub fold: f64,
    /// Binomial upper-tail p-value.
    pub p_value: f64,
}

/// GREAT's binomial region-set test: `hits` of `study_size` study
/// regions fall in annotated territory covering `annotated_bp` of
/// `genome_bp`.
pub fn region_enrichment(
    hits: u64,
    study_size: u64,
    annotated_bp: u64,
    genome_bp: u64,
) -> Enrichment {
    assert!(genome_bp > 0, "genome size must be positive");
    let p = (annotated_bp as f64 / genome_bp as f64).clamp(0.0, 1.0);
    let expected = study_size as f64 * p;
    let fold = if expected > 0.0 { hits as f64 / expected } else { f64::INFINITY };
    Enrichment { hits, study_size, expected, fold, p_value: binomial_sf(hits, study_size, p) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [(1u32, 1.0f64), (2, 1.0), (5, 24.0), (10, 362880.0)] {
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-9, "Γ({n})");
        }
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-9);
        assert!((ln_choose(10, 0)).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_tail_sane() {
        // Fair coin, P[X >= 0] = 1; P[X >= n] = p^n.
        assert_eq!(binomial_sf(0, 10, 0.5), 1.0);
        assert!((binomial_sf(10, 10, 0.5) - 0.5f64.powi(10)).abs() < 1e-12);
        // Monotone decreasing in k.
        let p1 = binomial_sf(3, 20, 0.1);
        let p2 = binomial_sf(6, 20, 0.1);
        assert!(p1 > p2);
        // 6 of 20 at p=0.1 is clearly enriched (exact tail ≈ 0.0113).
        assert!((p2 - 0.0113).abs() < 0.001, "P[X>=6 | Bin(20,0.1)] = {p2}");
    }

    #[test]
    fn hypergeometric_tail_sane() {
        // Urn: 10 balls, 5 red, draw 5: P[>=5 red] = 1/C(10,5) = 1/252.
        let p = hypergeometric_sf(5, 10, 5, 5);
        assert!((p - 1.0 / 252.0).abs() < 1e-9);
        assert_eq!(hypergeometric_sf(0, 10, 5, 5), 1.0);
        assert_eq!(hypergeometric_sf(6, 10, 5, 5), 0.0, "cannot exceed draws");
    }

    #[test]
    fn region_enrichment_detects_signal() {
        // 30 of 100 study regions in 1% of the genome: wildly enriched.
        let e = region_enrichment(30, 100, 1_000_000, 100_000_000);
        assert!((e.expected - 1.0).abs() < 1e-9);
        assert!(e.fold > 25.0);
        assert!(e.p_value < 1e-20);
        // 1 of 100 in 1%: expected, not significant.
        let e0 = region_enrichment(1, 100, 1_000_000, 100_000_000);
        assert!(e0.p_value > 0.5);
    }
}
