//! K-means clustering of genome-space rows.
//!
//! §4.1: "query results ... the starting point for data analysis
//! (including advanced data mining and computational intelligence)" —
//! e.g. "DNA region clustering" (abstract). K-means with k-means++
//! seeding over region profiles groups regions with similar behaviour
//! across experiments.

use crate::genome_space::GenomeSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means result.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster assignment per row.
    pub assignment: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run k-means (k-means++ seeding, Lloyd iterations) over the rows of a
/// genome space. Deterministic given `seed`. `k` is clamped to the row
/// count.
pub fn kmeans(space: &GenomeSpace, k: usize, max_iter: usize, seed: u64) -> Clustering {
    let rows = &space.values;
    let n = rows.len();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return Clustering { assignment: vec![], centroids: vec![], inertia: 0.0, iterations: 0 };
    }
    let dims = rows[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(rows[rng.gen_range(0..n)].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = rows
            .iter()
            .map(|r| centroids.iter().map(|c| sq_dist(r, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-12 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centroids.push(rows[next].clone());
    }

    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, r) in rows.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| sq_dist(r, &centroids[a]).total_cmp(&sq_dist(r, &centroids[b])))
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, r) in rows.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, v) in sums[assignment[i]].iter_mut().zip(r) {
                *s += v;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
    }
    let inertia = rows.iter().zip(&assignment).map(|(r, &a)| sq_dist(r, &centroids[a])).sum();
    Clustering { assignment, centroids, inertia, iterations }
}

/// Mean silhouette coefficient of a clustering (in [-1, 1]; higher =
/// tighter, better-separated clusters). Rows in singleton clusters score
/// 0, the usual convention.
pub fn silhouette(space: &GenomeSpace, assignment: &[usize]) -> f64 {
    let n = space.values.len();
    assert_eq!(n, assignment.len(), "assignment length must match rows");
    if n < 2 {
        return 0.0;
    }
    let k = assignment.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut sizes = vec![0usize; k];
    for &a in assignment {
        sizes[a] += 1;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = assignment[i];
        if sizes[own] <= 1 {
            continue; // singleton contributes 0
        }
        // Mean distance to each cluster.
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assignment[j]] += sq_dist(&space.values[i], &space.values[j]).sqrt();
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-12);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome_space::RegionKey;
    use nggc_gdm::{Chrom, Strand};

    fn space(values: Vec<Vec<f64>>) -> GenomeSpace {
        let n = values.len();
        GenomeSpace {
            regions: (0..n)
                .map(|i| RegionKey {
                    chrom: Chrom::new("chr1"),
                    left: i as u64,
                    right: i as u64 + 1,
                    strand: Strand::Unstranded,
                    label: None,
                })
                .collect(),
            experiments: vec!["e".into(); values.first().map(|r| r.len()).unwrap_or(0)],
            values,
        }
    }

    #[test]
    fn separates_two_obvious_clusters() {
        let gs = space(vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![10.0, 10.1],
            vec![10.1, 9.9],
        ]);
        let c = kmeans(&gs, 2, 50, 3);
        assert_eq!(c.assignment.len(), 5);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
        assert!(c.inertia < 1.0, "tight clusters: inertia {}", c.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let gs = space((0..20).map(|i| vec![i as f64, (i * i) as f64 % 7.0]).collect());
        let a = kmeans(&gs, 3, 30, 42);
        let b = kmeans(&gs, 3, 30, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn silhouette_rewards_good_clusterings() {
        let gs = space(vec![vec![0.0, 0.0], vec![0.2, 0.1], vec![10.0, 10.0], vec![10.2, 9.8]]);
        let good = silhouette(&gs, &[0, 0, 1, 1]);
        let bad = silhouette(&gs, &[0, 1, 0, 1]);
        assert!(good > 0.8, "tight well-separated clusters: {good}");
        assert!(bad < 0.0, "mixed clusters score negative: {bad}");
        // Endorse what kmeans finds.
        let c = kmeans(&gs, 2, 20, 1);
        assert!(silhouette(&gs, &c.assignment) > 0.8);
    }

    #[test]
    fn silhouette_edge_cases() {
        let gs = space(vec![vec![1.0]]);
        assert_eq!(silhouette(&gs, &[0]), 0.0, "single row");
        let gs2 = space(vec![vec![1.0], vec![2.0]]);
        assert_eq!(silhouette(&gs2, &[0, 1]), 0.0, "all singletons");
    }

    #[test]
    fn k_clamped_and_empty_ok() {
        let gs = space(vec![vec![1.0], vec![2.0]]);
        let c = kmeans(&gs, 10, 10, 0);
        assert!(c.centroids.len() <= 2);
        let empty = space(vec![]);
        let c = kmeans(&empty, 3, 10, 0);
        assert!(c.assignment.is_empty());
    }
}
