//! A text genome browser.
//!
//! §4.3: "it will also be possible to visualize results on genome
//! browsers". For terminal workflows this module renders dataset tracks
//! over a genomic window as aligned ASCII lanes — the quickest way to
//! eyeball a COVER result or a JOIN's pairs next to their annotation,
//! directly from the CLI or an example.

use nggc_gdm::{Chrom, Dataset, Strand};

/// A rendering window on one chromosome.
#[derive(Debug, Clone)]
pub struct Window {
    /// Chromosome.
    pub chrom: Chrom,
    /// Window start (inclusive).
    pub left: u64,
    /// Window end (exclusive).
    pub right: u64,
    /// Character width of the rendering.
    pub width: usize,
}

impl Window {
    /// Create a window; `right > left`, `width >= 10`.
    pub fn new(chrom: impl Into<Chrom>, left: u64, right: u64, width: usize) -> Window {
        assert!(right > left, "window must be non-empty");
        Window { chrom: chrom.into(), left, right, width: width.max(10) }
    }

    fn column(&self, pos: u64) -> usize {
        let span = (self.right - self.left) as f64;
        let rel = (pos.saturating_sub(self.left)) as f64 / span;
        ((rel * self.width as f64) as usize).min(self.width - 1)
    }
}

/// Render one track line per sample of each dataset, plus a coordinate
/// ruler. Regions draw as runs of `=` (`>`/`<` at the stranded ends),
/// overlapping the window; lanes are labelled `dataset/sample`.
pub fn render_tracks(window: &Window, datasets: &[&Dataset]) -> String {
    let mut lanes: Vec<(String, String)> = Vec::new();
    for ds in datasets {
        for s in &ds.samples {
            let mut lane = vec![b'.'; window.width];
            for r in s.chrom_slice(&window.chrom) {
                if r.right <= window.left {
                    continue;
                }
                if r.left >= window.right {
                    break;
                }
                let from = window.column(r.left.max(window.left));
                let to = window.column((r.right - 1).min(window.right - 1));
                for c in lane.iter_mut().take(to + 1).skip(from) {
                    *c = b'=';
                }
                match r.strand {
                    Strand::Pos => lane[to] = b'>',
                    Strand::Neg => lane[from] = b'<',
                    Strand::Unstranded => {}
                }
            }
            lanes
                .push((format!("{}/{}", ds.name, s.name), String::from_utf8(lane).expect("ascii")));
        }
    }
    let label_width = lanes.iter().map(|(l, _)| l.len()).max().unwrap_or(0).max(8);
    let mut out = String::new();
    // Ruler: tick marks every ~10 columns with the left coordinate.
    out.push_str(&format!(
        "{:>label_width$} {}:{}-{}\n",
        "window", window.chrom, window.left, window.right
    ));
    let mut ruler = vec![b' '; window.width];
    let step = (window.width / 8).max(1);
    for i in (0..window.width).step_by(step) {
        ruler[i] = b'|';
    }
    out.push_str(&format!("{:>label_width$} {}\n", "", String::from_utf8(ruler).expect("ascii")));
    for (label, lane) in lanes {
        out.push_str(&format!("{label:>label_width$} {lane}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{GRegion, Sample, Schema};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new("PEAKS", Schema::empty());
        ds.add_sample(Sample::new("s1", "PEAKS").with_regions(vec![
            GRegion::new("chr1", 100, 200, Strand::Pos),
            GRegion::new("chr1", 400, 450, Strand::Neg),
        ]))
        .unwrap();
        ds.add_sample(Sample::new("s2", "PEAKS").with_regions(vec![
            GRegion::new("chr1", 150, 350, Strand::Unstranded),
            GRegion::new("chr2", 0, 1000, Strand::Unstranded),
        ]))
        .unwrap();
        ds
    }

    #[test]
    fn renders_one_lane_per_sample() {
        let ds = dataset();
        let w = Window::new("chr1", 0, 500, 50);
        let text = render_tracks(&w, &[&ds]);
        let lanes: Vec<&str> = text.lines().collect();
        assert_eq!(lanes.len(), 4, "header + ruler + 2 lanes");
        assert!(lanes[2].contains("PEAKS/s1"));
        assert!(lanes[2].contains('='), "regions drawn");
        assert!(lanes[2].contains('>'), "plus-strand end marked");
        assert!(lanes[2].contains('<'), "minus-strand start marked");
    }

    #[test]
    fn clips_to_window_and_chromosome() {
        let ds = dataset();
        // Window on chr2: only s2's chr2 region shows.
        let w = Window::new("chr2", 0, 100, 40);
        let text = render_tracks(&w, &[&ds]);
        let s1_lane = text.lines().find(|l| l.contains("/s1")).unwrap();
        assert!(!s1_lane.contains('='), "s1 has nothing on chr2");
        let s2_lane = text.lines().find(|l| l.contains("/s2")).unwrap();
        assert!(s2_lane.matches('=').count() >= 39, "chr2 region covers the window");
    }

    #[test]
    fn window_outside_regions_is_blank() {
        let ds = dataset();
        let w = Window::new("chr1", 10_000, 20_000, 40);
        let text = render_tracks(&w, &[&ds]);
        assert!(!text.lines().skip(2).any(|l| l.contains('=')));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        Window::new("chr1", 5, 5, 40);
    }
}
