//! Genome spaces: the regions × experiments matrix of Figure 4.
//!
//! "Every map operation produces what we call a genome space, i.e., a
//! tabular space of regions vs. experiments, which is the starting point
//! for data analysis" (§4.1). A MAP result dataset has one sample per
//! (reference, experiment) pair, each carrying the same reference
//! regions; stacking one aggregate attribute across samples yields the
//! matrix.

use nggc_gdm::{Chrom, Dataset, Strand};
use std::fmt;

/// A region's identity within a genome space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegionKey {
    /// Chromosome.
    pub chrom: Chrom,
    /// Left end.
    pub left: u64,
    /// Right end.
    pub right: u64,
    /// Strand.
    pub strand: Strand,
    /// Optional label (e.g. gene name) taken from a string attribute.
    pub label: Option<String>,
}

impl fmt::Display for RegionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "{l}"),
            None => write!(f, "{}:{}-{}", self.chrom, self.left, self.right),
        }
    }
}

/// The regions × experiments matrix.
#[derive(Debug, Clone)]
pub struct GenomeSpace {
    /// Row identities (reference regions).
    pub regions: Vec<RegionKey>,
    /// Column identities (experiment sample names).
    pub experiments: Vec<String>,
    /// Row-major values; `values[r][c]` is region `r` in experiment `c`.
    pub values: Vec<Vec<f64>>,
}

/// Errors building a genome space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomeSpaceError {
    /// The dataset has no samples.
    Empty,
    /// The named attribute is missing or non-numeric.
    BadAttribute(String),
    /// Samples disagree on their reference regions.
    RaggedSamples {
        /// Offending sample name.
        sample: String,
    },
}

impl fmt::Display for GenomeSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeSpaceError::Empty => write!(f, "dataset has no samples"),
            GenomeSpaceError::BadAttribute(a) => {
                write!(f, "attribute {a:?} missing or non-numeric")
            }
            GenomeSpaceError::RaggedSamples { sample } => {
                write!(f, "sample {sample:?} disagrees on reference regions")
            }
        }
    }
}

impl std::error::Error for GenomeSpaceError {}

impl GenomeSpace {
    /// Build from a MAP result: `value_attr` supplies cell values;
    /// `label_attr` (optional) supplies row labels (e.g. the gene name).
    /// Missing values (nulls) become 0.
    pub fn from_map_result(
        dataset: &Dataset,
        value_attr: &str,
        label_attr: Option<&str>,
    ) -> Result<GenomeSpace, GenomeSpaceError> {
        let first = dataset.samples.first().ok_or(GenomeSpaceError::Empty)?;
        let value_pos = dataset
            .schema
            .position(value_attr)
            .ok_or_else(|| GenomeSpaceError::BadAttribute(value_attr.to_owned()))?;
        let label_pos = match label_attr {
            Some(a) => Some(
                dataset
                    .schema
                    .position(a)
                    .ok_or_else(|| GenomeSpaceError::BadAttribute(a.to_owned()))?,
            ),
            None => None,
        };
        let regions: Vec<RegionKey> = first
            .regions
            .iter()
            .map(|r| RegionKey {
                chrom: r.chrom.clone(),
                left: r.left,
                right: r.right,
                strand: r.strand,
                label: label_pos
                    .and_then(|p| r.values.get(p))
                    .and_then(|v| v.as_str())
                    .map(str::to_owned),
            })
            .collect();
        let mut experiments = Vec::with_capacity(dataset.samples.len());
        let mut columns: Vec<Vec<f64>> = Vec::with_capacity(dataset.samples.len());
        for s in &dataset.samples {
            if s.regions.len() != regions.len()
                || s.regions
                    .iter()
                    .zip(&regions)
                    .any(|(r, k)| r.chrom != k.chrom || r.left != k.left || r.right != k.right)
            {
                return Err(GenomeSpaceError::RaggedSamples { sample: s.name.clone() });
            }
            experiments.push(s.name.clone());
            columns.push(
                s.regions
                    .iter()
                    .map(|r| r.values.get(value_pos).and_then(|v| v.as_f64()).unwrap_or(0.0))
                    .collect(),
            );
        }
        // Transpose columns into row-major values.
        let values: Vec<Vec<f64>> =
            (0..regions.len()).map(|r| columns.iter().map(|c| c[r]).collect()).collect();
        Ok(GenomeSpace { regions, experiments, values })
    }

    /// Number of regions (rows).
    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of experiments (columns).
    pub fn n_experiments(&self) -> usize {
        self.experiments.len()
    }

    /// One row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.values[r]
    }

    /// Render as a TSV table (Figure 4's middle representation).
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("region");
        for e in &self.experiments {
            out.push('\t');
            out.push_str(e);
        }
        out.push('\n');
        for (k, row) in self.regions.iter().zip(&self.values) {
            out.push_str(&k.to_string());
            for v in row {
                out.push('\t');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Sample, Schema, Value, ValueType};

    fn map_result() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("name", ValueType::Str),
            Attribute::new("count", ValueType::Int),
        ])
        .unwrap();
        let mut ds = Dataset::new("R", schema);
        for (exp, counts) in [("e1", [3i64, 0, 7]), ("e2", [1, 2, 0])] {
            let regions = counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    GRegion::new("chr1", i as u64 * 100, i as u64 * 100 + 50, Strand::Unstranded)
                        .with_values(vec![Value::Str(format!("R{}", i + 1)), Value::Int(c)])
                })
                .collect();
            ds.add_sample(Sample::new(exp, "R").with_regions(regions)).unwrap();
        }
        ds
    }

    #[test]
    fn matrix_shape_and_values() {
        let gs = GenomeSpace::from_map_result(&map_result(), "count", Some("name")).unwrap();
        assert_eq!(gs.n_regions(), 3);
        assert_eq!(gs.n_experiments(), 2);
        assert_eq!(gs.row(0), &[3.0, 1.0]);
        assert_eq!(gs.row(2), &[7.0, 0.0]);
        assert_eq!(gs.regions[0].label.as_deref(), Some("R1"));
    }

    #[test]
    fn tsv_rendering() {
        let gs = GenomeSpace::from_map_result(&map_result(), "count", Some("name")).unwrap();
        let tsv = gs.to_tsv();
        assert!(tsv.starts_with("region\te1\te2\n"));
        assert!(tsv.contains("R3\t7\t0"));
    }

    #[test]
    fn errors() {
        let ds = map_result();
        assert!(matches!(
            GenomeSpace::from_map_result(&ds, "zzz", None),
            Err(GenomeSpaceError::BadAttribute(_))
        ));
        let empty = Dataset::new("E", Schema::empty());
        assert!(matches!(
            GenomeSpace::from_map_result(&empty, "x", None),
            Err(GenomeSpaceError::Empty)
        ));
        let mut ragged = map_result();
        ragged.samples[1].regions.pop();
        assert!(matches!(
            GenomeSpace::from_map_result(&ragged, "count", None),
            Err(GenomeSpaceError::RaggedSamples { .. })
        ));
    }
}
