//! A miniature UMLS-like biomedical ontology.
//!
//! UMLS (paper ref [15]) integrates full biomedical terminologies under a
//! restrictive license; per the DESIGN.md substitution table we ship a
//! faithful miniature covering the vocabulary that genomic-repository
//! metadata actually uses — cell lines, tissues, assays, antibodies/
//! histone marks, diseases — with is-a edges deep enough (4–5 levels) to
//! exercise annotation, closure, and query expansion meaningfully.

use crate::graph::Ontology;

/// Build the miniature biomedical ontology (~120 concepts).
pub fn mini_umls() -> Ontology {
    let mut o = Ontology::new();

    // --- top level ---------------------------------------------------------
    let entity = o.add("biomedical entity", "Top", &[], &[]);
    let disease = o.add("disease", "Disease", &["disorder"], &[entity]);
    let anatomy = o.add("anatomical structure", "Anatomy", &[], &[entity]);
    let cell = o.add("cell", "Cell", &[], &[entity]);
    let assay = o.add("assay", "Assay", &["experiment type"], &[entity]);
    let molecule = o.add("molecule", "Molecule", &[], &[entity]);

    // --- diseases ----------------------------------------------------------
    let cancer = o.add("cancer", "Disease", &["neoplasm", "tumor", "malignancy"], &[disease]);
    let carcinoma = o.add("carcinoma", "Disease", &[], &[cancer]);
    let leukemia = o.add("leukemia", "Disease", &["leukaemia"], &[cancer]);
    let cml = o.add("chronic myelogenous leukemia", "Disease", &["CML"], &[leukemia]);
    let cervical_ca = o.add("cervical carcinoma", "Disease", &[], &[carcinoma]);
    let hepato_ca = o.add("hepatocellular carcinoma", "Disease", &["liver cancer"], &[carcinoma]);
    let lung_ca = o.add("lung carcinoma", "Disease", &["lung cancer"], &[carcinoma]);
    let breast_ca = o.add("breast carcinoma", "Disease", &["breast cancer"], &[carcinoma]);
    o.add("melanoma", "Disease", &[], &[cancer]);
    o.add("diabetes", "Disease", &["diabetes mellitus"], &[disease]);

    // --- anatomy ------------------------------------------------------------
    let tissue = o.add("tissue", "Anatomy", &[], &[anatomy]);
    let liver = o.add("liver", "Anatomy", &["hepatic tissue"], &[tissue]);
    let lung = o.add("lung", "Anatomy", &["pulmonary tissue"], &[tissue]);
    let cervix = o.add("cervix", "Anatomy", &[], &[tissue]);
    let blood = o.add("blood", "Anatomy", &["peripheral blood"], &[tissue]);
    let breast = o.add("breast", "Anatomy", &["mammary gland"], &[tissue]);
    let brain = o.add("brain", "Anatomy", &["cerebral tissue"], &[tissue]);
    o.add("kidney", "Anatomy", &["renal tissue"], &[tissue]);
    o.add("embryo", "Anatomy", &["embryonic tissue"], &[tissue]);

    // --- cells & cell lines ---------------------------------------------------
    let cell_line = o.add("cell line", "Cell", &["cultured cell line"], &[cell]);
    let cancer_line = o.add("cancer cell line", "Cell", &[], &[cell_line, cancer]);
    let stem = o.add("stem cell", "Cell", &[], &[cell]);
    o.add("H1-hESC", "Cell", &["H1 human embryonic stem cells", "H1"], &[stem, cell_line]);
    o.add("HeLa", "Cell", &["HeLa-S3", "Hela"], &[cancer_line, cervical_ca, cervix]);
    o.add("K562", "Cell", &["K-562"], &[cancer_line, cml, blood]);
    o.add("HepG2", "Cell", &["Hep-G2"], &[cancer_line, hepato_ca, liver]);
    o.add("A549", "Cell", &[], &[cancer_line, lung_ca, lung]);
    o.add("MCF-7", "Cell", &["MCF7"], &[cancer_line, breast_ca, breast]);
    o.add("GM12878", "Cell", &["GM-12878"], &[cell_line, blood]);
    o.add("IMR90", "Cell", &["IMR-90"], &[cell_line, lung]);
    o.add("SK-N-SH", "Cell", &["SKNSH"], &[cancer_line, brain]);

    // --- assays -------------------------------------------------------------
    let seq = o.add("sequencing assay", "Assay", &["NGS assay"], &[assay]);
    let chip = o.add("ChIP-seq", "Assay", &["ChipSeq", "chromatin immunoprecipitation"], &[seq]);
    o.add("DNase-seq", "Assay", &["DnaseSeq", "DNase hypersensitivity"], &[seq]);
    o.add("RNA-seq", "Assay", &["RnaSeq", "transcriptome profiling"], &[seq]);
    o.add("WGBS", "Assay", &["whole genome bisulfite sequencing"], &[seq]);
    o.add("Repli-seq", "Assay", &["replication timing assay"], &[seq]);
    o.add("ChIA-PET", "Assay", &["chromatin interaction analysis"], &[seq]);
    o.add("BLESS", "Assay", &["break labeling sequencing"], &[seq]);
    o.add("ATAC-seq", "Assay", &["AtacSeq"], &[seq]);
    let _ = chip;

    // --- molecules: TFs and histone marks ---------------------------------------
    let protein = o.add("protein", "Molecule", &[], &[molecule]);
    let tf = o.add("transcription factor", "Molecule", &["TF"], &[protein]);
    o.add("CTCF", "Molecule", &["CCCTC-binding factor"], &[tf]);
    o.add("POLR2A", "Molecule", &["RNA polymerase II", "Pol2"], &[protein]);
    o.add("MYC", "Molecule", &["c-Myc"], &[tf]);
    o.add("EZH2", "Molecule", &[], &[protein]);
    let histone = o.add("histone modification", "Molecule", &["histone mark"], &[molecule]);
    let active_mark = o.add("active chromatin mark", "Molecule", &[], &[histone]);
    let repressive_mark = o.add("repressive chromatin mark", "Molecule", &[], &[histone]);
    o.add("H3K27ac", "Molecule", &["H3K27AC"], &[active_mark]);
    o.add("H3K4me1", "Molecule", &["H3K4ME1"], &[active_mark]);
    o.add("H3K4me3", "Molecule", &["H3K4ME3"], &[active_mark]);
    o.add("H3K36me3", "Molecule", &[], &[active_mark]);
    o.add("H3K27me3", "Molecule", &["H3K27ME3"], &[repressive_mark]);
    o.add("H3K9me3", "Molecule", &[], &[repressive_mark]);

    // --- genomic features (annotation vocabulary) --------------------------------
    let feature = o.add("genomic feature", "Feature", &[], &[entity]);
    let reg = o.add("regulatory region", "Feature", &[], &[feature]);
    o.add("gene", "Feature", &[], &[feature]);
    o.add("promoter", "Feature", &["promoter region"], &[reg]);
    o.add("enhancer", "Feature", &[], &[reg]);
    o.add("insulator", "Feature", &[], &[reg]);
    o.add("mutation", "Feature", &["variant", "SNV"], &[feature]);
    o.add("breakpoint", "Feature", &["break point", "DSB"], &[feature]);
    o.add("replication origin", "Feature", &["ORC site"], &[feature]);

    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_lookup() {
        let o = mini_umls();
        assert!(o.len() >= 60, "mini ontology has {} concepts", o.len());
        assert!(o.resolve("HeLa-S3").is_some());
        assert!(o.resolve("ChipSeq").is_some());
    }

    #[test]
    fn hela_is_a_cancer() {
        let o = mini_umls();
        let hela = o.resolve("HeLa").unwrap();
        let cancer = o.resolve("cancer").unwrap();
        let disease = o.resolve("disease").unwrap();
        assert!(o.is_a(hela, cancer));
        assert!(o.is_a(hela, disease));
    }

    #[test]
    fn cancer_expansion_reaches_cell_lines() {
        let o = mini_umls();
        let exp = o.expand_term("cancer");
        for line in ["HeLa", "K562", "HepG2", "A549", "MCF-7"] {
            assert!(exp.contains(&line.to_string()), "{line} missing from expansion");
        }
        // But a non-cancer line must not appear.
        assert!(!exp.contains(&"GM12878".to_string()));
        assert!(!exp.contains(&"IMR90".to_string()));
    }

    #[test]
    fn tissue_expansion() {
        let o = mini_umls();
        let exp = o.expand_term("liver");
        assert!(exp.contains(&"HepG2".to_string()));
    }

    #[test]
    fn annotate_typical_metadata() {
        let o = mini_umls();
        let hits = o.annotate("ChipSeq experiment on HeLa-S3 with CTCF antibody");
        let names: Vec<&str> = hits.iter().map(|&id| o.concept(id).name.as_str()).collect();
        assert!(names.contains(&"ChIP-seq"));
        assert!(names.contains(&"HeLa"));
        assert!(names.contains(&"CTCF"));
    }

    #[test]
    fn multi_parent_closure() {
        let o = mini_umls();
        let hepg2 = o.resolve("HepG2").unwrap();
        let closure = o.closure(&[hepg2]);
        let names: Vec<&str> = closure.iter().map(|&id| o.concept(id).name.as_str()).collect();
        assert!(names.contains(&"liver"), "tissue parent");
        assert!(names.contains(&"carcinoma"), "disease lineage");
        assert!(names.contains(&"cell line"), "cell lineage");
    }
}
