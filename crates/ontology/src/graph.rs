//! The concept graph: concepts, synonyms, is-a edges, semantic closure.
//!
//! §4.3: "Ontological reasoning will be required in order to establish
//! the appropriate conceptual relationships between the metadata ...
//! semantically annotating the metadata of each repository's datasets by
//! means of UMLS, and completing the information by performing the
//! semantic closure of such annotations." UMLS itself is licensed; the
//! reproduction ships a faithful miniature ([`crate::mini::mini_umls`])
//! over the same graph machinery.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Identifier of a concept within an [`Ontology`].
pub type ConceptId = usize;

/// One ontology concept.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Concept {
    /// Canonical (preferred) name.
    pub name: String,
    /// Alternative names.
    pub synonyms: Vec<String>,
    /// Semantic category (e.g. "Cell", "Tissue", "Assay").
    pub category: String,
}

/// A directed acyclic is-a ontology with synonym-aware term lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ontology {
    concepts: Vec<Concept>,
    /// `parents[c]` = direct is-a super-concepts of `c`.
    parents: Vec<Vec<ConceptId>>,
    /// lowercase term → concept (names and synonyms).
    #[serde(skip)]
    term_index: HashMap<String, ConceptId>,
}

impl Ontology {
    /// Empty ontology.
    pub fn new() -> Ontology {
        Ontology::default()
    }

    /// Add a concept; `parents` must already exist (ids are returned by
    /// earlier `add` calls), which structurally guarantees acyclicity.
    pub fn add(
        &mut self,
        name: &str,
        category: &str,
        synonyms: &[&str],
        parents: &[ConceptId],
    ) -> ConceptId {
        for &p in parents {
            assert!(p < self.concepts.len(), "parent {p} does not exist");
        }
        let id = self.concepts.len();
        self.concepts.push(Concept {
            name: name.to_owned(),
            synonyms: synonyms.iter().map(|s| (*s).to_owned()).collect(),
            category: category.to_owned(),
        });
        self.parents.push(parents.to_vec());
        self.term_index.insert(name.to_ascii_lowercase(), id);
        for s in synonyms {
            self.term_index.insert(s.to_ascii_lowercase(), id);
        }
        id
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when the ontology has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Concept by id.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id]
    }

    /// Resolve a term (name or synonym, case-insensitive) to a concept.
    pub fn resolve(&self, term: &str) -> Option<ConceptId> {
        self.term_index.get(&term.trim().to_ascii_lowercase()).copied()
    }

    /// Rebuild the term index (after deserialisation, which skips it).
    pub fn rebuild_index(&mut self) {
        self.term_index.clear();
        for (id, c) in self.concepts.iter().enumerate() {
            self.term_index.insert(c.name.to_ascii_lowercase(), id);
            for s in &c.synonyms {
                self.term_index.insert(s.to_ascii_lowercase(), id);
            }
        }
    }

    /// Direct parents of a concept.
    pub fn parents(&self, id: ConceptId) -> &[ConceptId] {
        &self.parents[id]
    }

    /// All ancestors of a concept (excluding itself), via is-a edges.
    pub fn ancestors(&self, id: ConceptId) -> BTreeSet<ConceptId> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<ConceptId> = self.parents[id].clone();
        while let Some(c) = stack.pop() {
            if out.insert(c) {
                stack.extend(self.parents[c].iter().copied());
            }
        }
        out
    }

    /// All descendants of a concept (excluding itself).
    pub fn descendants(&self, id: ConceptId) -> BTreeSet<ConceptId> {
        let mut out = BTreeSet::new();
        // is-a edges are sparse; a linear scan per level is fine at
        // mini-UMLS scale.
        let mut frontier = vec![id];
        while let Some(cur) = frontier.pop() {
            for (c, ps) in self.parents.iter().enumerate() {
                if ps.contains(&cur) && out.insert(c) {
                    frontier.push(c);
                }
            }
        }
        out
    }

    /// **Semantic closure** of a set of concepts: the set plus all
    /// ancestors (the §4.3 completion step — a sample annotated "HeLa"
    /// is implicitly about "cervix carcinoma" and "cancer").
    pub fn closure(&self, ids: &[ConceptId]) -> BTreeSet<ConceptId> {
        let mut out: BTreeSet<ConceptId> = ids.iter().copied().collect();
        for &id in ids {
            out.extend(self.ancestors(id));
        }
        out
    }

    /// True when `specific` is-a `general` (reflexive).
    pub fn is_a(&self, specific: ConceptId, general: ConceptId) -> bool {
        specific == general || self.ancestors(specific).contains(&general)
    }

    /// Annotate free text: every maximal token run matching a concept
    /// term yields that concept. Matches whole terms against the index
    /// (single tokens and bigrams), the strategy of dictionary-based
    /// biomedical annotators.
    pub fn annotate(&self, text: &str) -> Vec<ConceptId> {
        let tokens: Vec<&str> = text
            .split(|c: char| !(c.is_alphanumeric() || c == '-'))
            .filter(|t| !t.is_empty())
            .collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            // Prefer the longer (bigram) match.
            if i + 1 < tokens.len() {
                let bigram = format!("{} {}", tokens[i], tokens[i + 1]);
                if let Some(id) = self.resolve(&bigram) {
                    out.push(id);
                    i += 2;
                    continue;
                }
            }
            if let Some(id) = self.resolve(tokens[i]) {
                out.push(id);
            }
            i += 1;
        }
        out.dedup();
        out
    }

    /// Expand a query term to the names of the concept and all its
    /// descendants (searching "carcinoma" should match samples annotated
    /// with specific carcinoma cell lines).
    pub fn expand_term(&self, term: &str) -> Vec<String> {
        let Some(id) = self.resolve(term) else { return vec![term.to_owned()] };
        let mut out = vec![self.concepts[id].name.clone()];
        out.extend(self.concepts[id].synonyms.iter().cloned());
        for d in self.descendants(id) {
            out.push(self.concepts[d].name.clone());
            out.extend(self.concepts[d].synonyms.iter().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Ontology, ConceptId, ConceptId, ConceptId, ConceptId) {
        let mut o = Ontology::new();
        let disease = o.add("disease", "Disease", &[], &[]);
        let cancer = o.add("cancer", "Disease", &["neoplasm"], &[disease]);
        let carcinoma = o.add("carcinoma", "Disease", &[], &[cancer]);
        let hela = o.add("HeLa", "Cell", &["HeLa-S3"], &[carcinoma]);
        (o, disease, cancer, carcinoma, hela)
    }

    #[test]
    fn resolve_names_and_synonyms() {
        let (o, _, cancer, _, hela) = toy();
        assert_eq!(o.resolve("CANCER"), Some(cancer));
        assert_eq!(o.resolve("neoplasm"), Some(cancer));
        assert_eq!(o.resolve("hela-s3"), Some(hela));
        assert_eq!(o.resolve("unknown"), None);
    }

    #[test]
    fn ancestors_and_closure() {
        let (o, disease, cancer, carcinoma, hela) = toy();
        assert_eq!(o.ancestors(hela), [carcinoma, cancer, disease].into_iter().collect());
        let cl = o.closure(&[hela]);
        assert_eq!(cl.len(), 4);
        assert!(o.is_a(hela, disease));
        assert!(!o.is_a(disease, hela));
        assert!(o.is_a(hela, hela), "reflexive");
    }

    #[test]
    fn descendants() {
        let (o, disease, ..) = toy();
        assert_eq!(o.descendants(disease).len(), 3);
    }

    #[test]
    fn annotation_prefers_bigrams() {
        let mut o = Ontology::new();
        let cell = o.add("cell line", "Cell", &[], &[]);
        let k = o.add("K562", "Cell", &[], &[cell]);
        let hits = o.annotate("Sample from cell line K562, replicate 2");
        assert_eq!(hits, vec![cell, k]);
    }

    #[test]
    fn expand_term_includes_descendants() {
        let (o, _, _, _, _) = toy();
        let exp = o.expand_term("cancer");
        assert!(exp.contains(&"carcinoma".to_string()));
        assert!(exp.contains(&"HeLa".to_string()));
        assert!(exp.contains(&"HeLa-S3".to_string()), "synonyms included");
        assert_eq!(o.expand_term("zzz"), vec!["zzz".to_string()], "unknown term passes through");
    }

    #[test]
    fn serde_with_index_rebuild() {
        let (o, _, cancer, _, _) = toy();
        let json = serde_json::to_string(&o).unwrap();
        let mut back: Ontology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.resolve("cancer"), None, "index skipped by serde");
        back.rebuild_index();
        assert_eq!(back.resolve("cancer"), Some(cancer));
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_parent_rejected() {
        let mut o = Ontology::new();
        o.add("x", "X", &[], &[5]);
    }
}
