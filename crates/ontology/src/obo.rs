//! OBO interchange: load and save ontologies in the (flat) OBO format.
//!
//! Real biomedical ontologies (GO, Uberon, Cell Ontology, DOID) ship as
//! OBO files; supporting the core `[Term]` stanza subset means a
//! repository operator can swap the built-in mini-UMLS for a real
//! vocabulary without code changes. Supported tags: `id`, `name`,
//! `synonym`, `is_a`, `namespace`; everything else is ignored, as OBO
//! consumers are required to do with unknown tags.

use crate::graph::{ConceptId, Ontology};
use std::collections::HashMap;
use std::fmt;

/// Errors parsing OBO text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OboError {
    /// A term stanza without an `id:` tag.
    MissingId {
        /// 1-based line of the stanza header.
        line: usize,
    },
    /// An `is_a:` referencing an id that appears nowhere in the file.
    UnknownParent {
        /// The child term id.
        term: String,
        /// The missing parent id.
        parent: String,
    },
    /// Two stanzas share an id.
    DuplicateId(String),
}

impl fmt::Display for OboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OboError::MissingId { line } => write!(f, "term stanza at line {line} has no id"),
            OboError::UnknownParent { term, parent } => {
                write!(f, "term {term:?} references unknown parent {parent:?}")
            }
            OboError::DuplicateId(id) => write!(f, "duplicate term id {id:?}"),
        }
    }
}

impl std::error::Error for OboError {}

#[derive(Debug, Default, Clone)]
struct RawTerm {
    id: String,
    name: String,
    namespace: String,
    synonyms: Vec<String>,
    parents: Vec<String>,
    obsolete: bool,
}

/// Parse OBO text into an [`Ontology`]. `is_a` edges may reference terms
/// defined later in the file (two-pass). Obsolete terms are skipped.
pub fn parse_obo(text: &str) -> Result<Ontology, OboError> {
    // Pass 1: collect stanzas.
    let mut terms: Vec<RawTerm> = Vec::new();
    let mut current: Option<(RawTerm, usize)> = None;
    let mut in_term = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            if let Some((t, line_no)) = current.take() {
                if t.id.is_empty() {
                    return Err(OboError::MissingId { line: line_no });
                }
                terms.push(t);
            }
            in_term = line == "[Term]";
            if in_term {
                current = Some((RawTerm::default(), idx + 1));
            }
            continue;
        }
        if !in_term {
            continue;
        }
        let Some((term, _)) = current.as_mut() else { continue };
        let Some((tag, value)) = line.split_once(':') else { continue };
        // Comments after ' ! ' are standard OBO.
        let value = value.split(" ! ").next().unwrap_or(value).trim();
        match tag.trim() {
            "id" => term.id = value.to_owned(),
            "name" => term.name = value.to_owned(),
            "namespace" => term.namespace = value.to_owned(),
            "is_a" => term.parents.push(value.to_owned()),
            "synonym" => {
                // synonym: "text" SCOPE [xrefs]
                if let Some(open) = value.find('"') {
                    if let Some(close) = value[open + 1..].find('"') {
                        term.synonyms.push(value[open + 1..open + 1 + close].to_owned());
                    }
                }
            }
            "is_obsolete" => term.obsolete = value == "true",
            _ => {}
        }
    }
    if let Some((t, line_no)) = current.take() {
        if t.id.is_empty() {
            return Err(OboError::MissingId { line: line_no });
        }
        terms.push(t);
    }
    terms.retain(|t| !t.obsolete);

    // Pass 2: topological insertion (parents before children).
    let mut by_id: HashMap<&str, &RawTerm> = HashMap::new();
    for t in &terms {
        if by_id.insert(t.id.as_str(), t).is_some() {
            return Err(OboError::DuplicateId(t.id.clone()));
        }
    }
    let mut onto = Ontology::new();
    let mut placed: HashMap<String, ConceptId> = HashMap::new();
    // Iterate until fixpoint; cycle or dangling parent ⇒ error.
    let mut remaining: Vec<&RawTerm> = terms.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|t| {
            let parent_ids: Option<Vec<ConceptId>> =
                t.parents.iter().map(|p| placed.get(p).copied()).collect();
            match parent_ids {
                Some(parents) => {
                    let name = if t.name.is_empty() { t.id.clone() } else { t.name.clone() };
                    let syns: Vec<&str> = t.synonyms.iter().map(String::as_str).collect();
                    let namespace =
                        if t.namespace.is_empty() { "Term" } else { t.namespace.as_str() };
                    let id = onto.add(&name, namespace, &syns, &parents);
                    placed.insert(t.id.clone(), id);
                    false
                }
                None => true,
            }
        });
        if remaining.len() == before {
            // No progress: some parent is missing (or a cycle exists).
            let t = remaining[0];
            let parent =
                t.parents.iter().find(|p| !placed.contains_key(*p)).cloned().unwrap_or_default();
            return Err(OboError::UnknownParent { term: t.id.clone(), parent });
        }
    }
    Ok(onto)
}

/// Serialise an ontology as OBO text (ids are `NGGC:NNNNNNN`).
pub fn write_obo(onto: &Ontology) -> String {
    let mut out = String::from("format-version: 1.2\nontology: nggc\n");
    for id in 0..onto.len() {
        let c = onto.concept(id);
        out.push_str("\n[Term]\n");
        out.push_str(&format!("id: NGGC:{id:07}\n"));
        out.push_str(&format!("name: {}\n", c.name));
        out.push_str(&format!("namespace: {}\n", c.category));
        for s in &c.synonyms {
            out.push_str(&format!("synonym: \"{s}\" EXACT []\n"));
        }
        for &p in onto.parents(id) {
            out.push_str(&format!("is_a: NGGC:{p:07} ! {}\n", onto.concept(p).name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini::mini_umls;

    const OBO: &str = r#"format-version: 1.2

[Term]
id: DOID:0001
name: disease

[Term]
id: DOID:0002
name: cancer
synonym: "neoplasm" EXACT []
synonym: "malignancy" RELATED [PMID:1]
is_a: DOID:0001 ! disease

[Term]
id: DOID:0003
name: carcinoma
is_a: DOID:0002

[Typedef]
id: part_of
name: part of

[Term]
id: DOID:0004
name: old term
is_obsolete: true
"#;

    #[test]
    fn parses_terms_synonyms_hierarchy() {
        let onto = parse_obo(OBO).unwrap();
        assert_eq!(onto.len(), 3, "obsolete term and Typedef skipped");
        let cancer = onto.resolve("cancer").unwrap();
        assert_eq!(onto.resolve("neoplasm"), Some(cancer), "quoted synonym");
        assert_eq!(onto.resolve("malignancy"), Some(cancer));
        let carcinoma = onto.resolve("carcinoma").unwrap();
        let disease = onto.resolve("disease").unwrap();
        assert!(onto.is_a(carcinoma, disease));
    }

    #[test]
    fn forward_references_resolve() {
        // Child stanza BEFORE its parent.
        let text = "[Term]\nid: B\nname: b\nis_a: A\n\n[Term]\nid: A\nname: a\n";
        let onto = parse_obo(text).unwrap();
        assert!(onto.is_a(onto.resolve("b").unwrap(), onto.resolve("a").unwrap()));
    }

    #[test]
    fn errors_detected() {
        assert!(matches!(parse_obo("[Term]\nname: no id here\n"), Err(OboError::MissingId { .. })));
        assert!(matches!(
            parse_obo("[Term]\nid: X\nname: x\nis_a: GHOST\n"),
            Err(OboError::UnknownParent { .. })
        ));
        assert!(matches!(
            parse_obo("[Term]\nid: X\nname: a\n\n[Term]\nid: X\nname: b\n"),
            Err(OboError::DuplicateId(_))
        ));
        // A cycle can never topo-sort.
        assert!(parse_obo("[Term]\nid: A\nis_a: B\n\n[Term]\nid: B\nis_a: A\n").is_err());
    }

    #[test]
    fn mini_umls_roundtrips_through_obo() {
        let original = mini_umls();
        let text = write_obo(&original);
        let back = parse_obo(&text).unwrap();
        assert_eq!(back.len(), original.len());
        // Spot-check semantic equivalence.
        for (specific, general) in
            [("HeLa", "cancer"), ("HepG2", "liver"), ("H3K27ac", "histone modification")]
        {
            let s = back.resolve(specific).unwrap();
            let g = back.resolve(general).unwrap();
            assert!(back.is_a(s, g), "{specific} is_a {general} survives the roundtrip");
        }
        // Expansion still works after the roundtrip.
        assert!(back.expand_term("cancer").contains(&"HeLa".to_string()));
    }
}
