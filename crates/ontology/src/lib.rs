//! # `nggc-ontology` — ontological mediation of metadata
//!
//! §4.3 of the paper calls for "the mediation of ontological knowledge":
//! semantically annotating repository metadata with UMLS concepts,
//! completing annotations via **semantic closure**, and expanding user
//! queries through the concept graph. This crate implements the graph
//! machinery ([`Ontology`]: concepts, synonyms, is-a DAG, closure,
//! annotation, term expansion) and ships a miniature biomedical ontology
//! ([`mini_umls`]) standing in for the licensed UMLS (see DESIGN.md's
//! substitution table).

#![warn(missing_docs)]

pub mod graph;
pub mod mini;
pub mod obo;

pub use graph::{Concept, ConceptId, Ontology};
pub use mini::mini_umls;
pub use obo::{parse_obo, write_obo, OboError};
