//! BED format (3–6 fixed columns plus optional extra typed columns).
//!
//! BED is the lingua franca of processed region data (the paper's §2
//! example loads ENCODE samples "in BED format"). Columns:
//! `chrom start end [name] [score] [strand] [extra...]`.
//!
//! The GDM mapping keeps `name` as a string attribute, `score` as a float,
//! and any extra columns according to a caller-provided schema.

use crate::error::FormatError;
use nggc_gdm::{Attribute, GRegion, Schema, Strand, Value, ValueType};

/// Parsing configuration for BED-family files.
#[derive(Debug, Clone)]
pub struct BedOptions {
    /// Number of standard columns expected (3..=6).
    pub standard_columns: usize,
    /// Schema of extra columns beyond the standard ones.
    pub extra: Vec<Attribute>,
}

impl Default for BedOptions {
    fn default() -> Self {
        BedOptions { standard_columns: 6, extra: Vec::new() }
    }
}

impl BedOptions {
    /// BED3: coordinates only.
    pub fn bed3() -> BedOptions {
        BedOptions { standard_columns: 3, extra: Vec::new() }
    }

    /// BED6: coordinates + name + score + strand.
    pub fn bed6() -> BedOptions {
        BedOptions::default()
    }

    /// The GDM schema induced by these options.
    pub fn schema(&self) -> Schema {
        let mut attrs = Vec::new();
        if self.standard_columns >= 4 {
            attrs.push(Attribute::new("name", ValueType::Str));
        }
        if self.standard_columns >= 5 {
            attrs.push(Attribute::new("score", ValueType::Float));
        }
        attrs.extend(self.extra.iter().cloned());
        Schema::new(attrs).expect("BED schema attributes are valid")
    }
}

/// Parse BED text into regions according to `opts`. Lines starting with
/// `#`, `track` or `browser` and blank lines are skipped.
pub fn parse_bed(text: &str, opts: &BedOptions) -> Result<Vec<GRegion>, FormatError> {
    if !(3..=6).contains(&opts.standard_columns) {
        return Err(FormatError::UnknownFormat(format!(
            "BED with {} standard columns",
            opts.standard_columns
        )));
    }
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty()
            || line.starts_with('#')
            || line.starts_with("track")
            || line.starts_with("browser")
        {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let min = opts.standard_columns.min(3);
        if fields.len() < min {
            return Err(FormatError::malformed(lineno, format!("expected ≥{min} fields")));
        }
        let chrom = fields[0];
        let start: u64 = fields[1]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad start {:?}", fields[1])))?;
        let end: u64 = fields[2]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad end {:?}", fields[2])))?;
        if end < start {
            return Err(FormatError::malformed(lineno, format!("end {end} < start {start}")));
        }
        let strand = if opts.standard_columns >= 6 {
            fields
                .get(5)
                .map(|s| {
                    Strand::parse(s)
                        .ok_or_else(|| FormatError::malformed(lineno, format!("bad strand {s:?}")))
                })
                .transpose()?
                .unwrap_or(Strand::Unstranded)
        } else {
            Strand::Unstranded
        };

        let mut values = Vec::new();
        if opts.standard_columns >= 4 {
            values.push(match fields.get(3) {
                Some(v) => Value::parse_as(v, ValueType::Str).map_err(nggc_gdm::GdmError::from)?,
                None => Value::Null,
            });
        }
        if opts.standard_columns >= 5 {
            values.push(match fields.get(4) {
                Some(v) => {
                    Value::parse_as(v, ValueType::Float).map_err(nggc_gdm::GdmError::from)?
                }
                None => Value::Null,
            });
        }
        for (i, attr) in opts.extra.iter().enumerate() {
            let col = opts.standard_columns + i;
            values.push(match fields.get(col) {
                Some(v) => Value::parse_as(v, attr.ty).map_err(nggc_gdm::GdmError::from)?,
                None => Value::Null,
            });
        }
        out.push(GRegion::new(chrom, start, end, strand).with_values(values));
    }
    Ok(out)
}

/// Serialise regions as BED text (inverse of [`parse_bed`] for the same
/// options).
pub fn write_bed(regions: &[GRegion], opts: &BedOptions) -> String {
    let mut out = String::new();
    for r in regions {
        out.push_str(r.chrom.as_str());
        out.push('\t');
        out.push_str(&r.left.to_string());
        out.push('\t');
        out.push_str(&r.right.to_string());
        let mut vi = 0;
        if opts.standard_columns >= 4 {
            out.push('\t');
            out.push_str(&r.values.get(vi).map(Value::render).unwrap_or_else(|| ".".into()));
            vi += 1;
        }
        if opts.standard_columns >= 5 {
            out.push('\t');
            out.push_str(&r.values.get(vi).map(Value::render).unwrap_or_else(|| ".".into()));
            vi += 1;
        }
        if opts.standard_columns >= 6 {
            out.push('\t');
            out.push(r.strand.symbol());
        }
        for _ in &opts.extra {
            out.push('\t');
            out.push_str(&r.values.get(vi).map(Value::render).unwrap_or_else(|| ".".into()));
            vi += 1;
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bed3_minimal() {
        let rs = parse_bed("chr1\t10\t20\nchr2\t0\t5\n", &BedOptions::bed3()).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].len(), 10);
        assert_eq!(rs[0].strand, Strand::Unstranded);
        assert!(rs[0].values.is_empty());
    }

    #[test]
    fn bed6_full() {
        let rs = parse_bed("chr1\t10\t20\tpeak1\t77.5\t-\n", &BedOptions::bed6()).unwrap();
        assert_eq!(rs[0].strand, Strand::Neg);
        assert_eq!(rs[0].values, vec![Value::Str("peak1".into()), Value::Float(77.5)]);
    }

    #[test]
    fn skips_headers_and_blank_lines() {
        let text = "# comment\ntrack name=x\nbrowser position chr1\n\nchr1\t0\t1\n";
        let rs = parse_bed(text, &BedOptions::bed3()).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn extra_columns_typed() {
        let opts = BedOptions {
            standard_columns: 6,
            extra: vec![Attribute::new("p_value", ValueType::Float)],
        };
        let rs = parse_bed("chr1\t0\t5\tp\t1\t+\t0.003\n", &opts).unwrap();
        assert_eq!(rs[0].values[2], Value::Float(0.003));
        assert_eq!(opts.schema().len(), 3);
    }

    #[test]
    fn missing_trailing_columns_become_null() {
        let rs = parse_bed("chr1\t0\t5\n", &BedOptions::bed6()).unwrap();
        assert_eq!(rs[0].values, vec![Value::Null, Value::Null]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_bed("chr1\t0\t5\nchr1\tX\t9\n", &BedOptions::bed3()).unwrap_err();
        match err {
            FormatError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_inverted_coordinates() {
        assert!(parse_bed("chr1\t20\t10\n", &BedOptions::bed3()).is_err());
    }

    #[test]
    fn roundtrip_bed6() {
        let opts = BedOptions::bed6();
        let text = "chr1\t0\t5\tp1\t3.5\t+\nchr2\t9\t20\t.\t.\t*\n";
        let rs = parse_bed(text, &opts).unwrap();
        assert_eq!(write_bed(&rs, &opts), text);
    }
}
