//! # `nggc-formats` — interoperability with genomic file formats
//!
//! GDM's goal is to "guarantee interoperability between existing data
//! formats" (paper abstract): every processed-data format maps onto
//! regions + schema + metadata. This crate implements parsers and writers
//! for the formats the paper's scenarios touch:
//!
//! | Format | Module | GDM mapping |
//! |---|---|---|
//! | BED 3–6 (+extra columns) | [`bed`] | `name: string`, `score: float`, extra typed |
//! | ENCODE narrowPeak / broadPeak | [`peak`] | peak-calling attributes incl. `p_value` |
//! | GTF annotations | [`gtf`] | `source, feature, score, frame, gene_id, transcript_id` |
//! | VCF-lite variants | [`vcf`] | `id, ref, alt, qual, filter, info`; 1 bp SNVs |
//! | GFF3 annotations | [`gff3`] | GTF columns + `id, name, parent` hierarchy |
//! | bedGraph signals | [`bedgraph`] | single `signal: float` |
//! | WIG signals | [`wig`] | fixed/variable step → `signal: float` regions |
//! | GDM native v1 | [`native`] | schema file + per-sample region/`.meta` text files |
//! | GDM native v2 | [`native_v2`] | binary columnar container with per-chromosome index |
//!
//! [`detect::FileFormat`] dispatches by extension, so mixed directories
//! load uniformly.

#![warn(missing_docs)]

pub mod bed;
pub mod bedgraph;
pub mod detect;
pub mod error;
pub mod gff3;
pub mod gtf;
pub mod loader;
pub mod native;
pub mod native_v2;
pub mod peak;
pub mod vcf;
pub mod wig;

pub use bed::{parse_bed, write_bed, BedOptions};
pub use bedgraph::{bedgraph_schema, parse_bedgraph, write_bedgraph};
pub use detect::FileFormat;
pub use error::FormatError;
pub use gff3::{gff3_schema, parse_gff3, write_gff3};
pub use gtf::{gtf_schema, parse_gtf, write_gtf};
pub use loader::{load_directory, LoadReport};
pub use native::{read_dataset, read_dataset_streaming, write_dataset};
pub use native_v2::{
    detect_version, read_dataset_auto, read_dataset_v2, read_dataset_v2_chrom,
    read_dataset_v2_pruned, read_dataset_v2_streaming, write_dataset_v2, ScanOptions, ScanStats,
    StorageVersion,
};
pub use peak::{parse_peaks, write_peaks, PeakKind};
pub use vcf::{parse_vcf, vcf_schema, write_vcf};
pub use wig::{parse_wig, wig_schema};
