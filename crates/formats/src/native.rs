//! GDM native on-disk format.
//!
//! Mirrors the layout of the original GMQL repository: a dataset is a
//! directory holding a schema file and, per sample, a region file plus a
//! companion `.meta` file — "both regions and metadata" live side by side
//! (paper §2).
//!
//! ```text
//! <dataset>/
//!   schema.gdm            # one "name<TAB>type" line per variable attribute
//!   files/
//!     <sample>.gdm        # regions: chr left right strand v1 v2 ...
//!     <sample>.gdm.meta   # metadata: attribute<TAB>value
//! ```

use crate::error::FormatError;
use nggc_gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, Value, ValueType};
use std::fs;
use std::path::Path;

/// Serialise a schema to the `schema.gdm` text representation.
pub fn render_schema(schema: &Schema) -> String {
    let mut out = String::new();
    for a in schema.attributes() {
        out.push_str(&format!("{}\t{}\n", a.name, a.ty.name()));
    }
    out
}

/// Parse a `schema.gdm` file body.
pub fn parse_schema(text: &str) -> Result<Schema, FormatError> {
    let mut attrs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, ty) = line
            .split_once('\t')
            .ok_or_else(|| FormatError::malformed(idx + 1, "expected name<TAB>type"))?;
        let ty = ValueType::parse(ty.trim())
            .ok_or_else(|| FormatError::malformed(idx + 1, format!("unknown type {ty:?}")))?;
        attrs.push(Attribute::new(name.trim(), ty));
    }
    Ok(Schema::new(attrs)?)
}

/// Serialise one sample's regions in native layout (schema gives types).
pub fn render_regions(regions: &[GRegion]) -> String {
    let mut out = String::new();
    for r in regions {
        out.push_str(&format!("{}\t{}\t{}\t{}", r.chrom, r.left, r.right, r.strand.symbol()));
        for v in &r.values {
            out.push('\t');
            out.push_str(&v.render());
        }
        out.push('\n');
    }
    out
}

/// Parse a native region file body against a schema.
pub fn parse_regions(text: &str, schema: &Schema) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 + schema.len() {
            return Err(FormatError::malformed(
                lineno,
                format!("expected {} fields, found {}", 4 + schema.len(), fields.len()),
            ));
        }
        let left: u64 = fields[1]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad left {:?}", fields[1])))?;
        let right: u64 = fields[2]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad right {:?}", fields[2])))?;
        let strand = Strand::parse(fields[3])
            .ok_or_else(|| FormatError::malformed(lineno, format!("bad strand {:?}", fields[3])))?;
        let mut values = Vec::with_capacity(schema.len());
        for (attr, tok) in schema.attributes().iter().zip(&fields[4..]) {
            values.push(
                Value::parse_as(tok, attr.ty)
                    .map_err(|e| FormatError::malformed(lineno, e.to_string()))?,
            );
        }
        out.push(GRegion::new(fields[0], left, right, strand).with_values(values));
    }
    Ok(out)
}

/// Serialise metadata as `attribute<TAB>value` lines.
pub fn render_metadata(meta: &Metadata) -> String {
    let mut out = String::new();
    for (k, v) in meta.iter() {
        out.push_str(&format!("{k}\t{v}\n"));
    }
    out
}

/// Parse a `.meta` file body.
pub fn parse_metadata(text: &str) -> Result<Metadata, FormatError> {
    let mut meta = Metadata::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once('\t')
            .ok_or_else(|| FormatError::malformed(idx + 1, "expected attribute<TAB>value"))?;
        meta.insert(k, v);
    }
    Ok(meta)
}

/// Write a whole dataset to `dir` in native layout, creating directories.
pub fn write_dataset(dataset: &Dataset, dir: &Path) -> Result<(), FormatError> {
    let files = dir.join("files");
    fs::create_dir_all(&files)?;
    fs::write(dir.join("schema.gdm"), render_schema(&dataset.schema))?;
    for s in &dataset.samples {
        fs::write(files.join(format!("{}.gdm", s.name)), render_regions(&s.regions))?;
        fs::write(files.join(format!("{}.gdm.meta", s.name)), render_metadata(&s.metadata))?;
    }
    Ok(())
}

/// Read a whole dataset from `dir`. The dataset name is taken from the
/// directory's file name; samples are loaded in lexicographic order for
/// determinism.
pub fn read_dataset(dir: &Path) -> Result<Dataset, FormatError> {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_owned());
    let schema = parse_schema(&fs::read_to_string(dir.join("schema.gdm"))?)?;
    let mut dataset = Dataset::new(name.clone(), schema);
    let files = dir.join("files");
    let mut entries: Vec<_> = fs::read_dir(&files)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "gdm").unwrap_or(false))
        .collect();
    entries.sort();
    for region_path in entries {
        let stem =
            region_path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let regions = parse_regions(&fs::read_to_string(&region_path)?, &dataset.schema)?;
        let meta_path = files.join(format!("{stem}.gdm.meta"));
        let metadata = if meta_path.exists() {
            parse_metadata(&fs::read_to_string(&meta_path)?)?
        } else {
            Metadata::new()
        };
        let sample = Sample::new(stem, &name).with_regions(regions).with_metadata(metadata);
        dataset.add_sample(sample)?;
    }
    Ok(dataset)
}

/// Stream a dataset from `dir`, invoking `visit` once per sample instead
/// of materialising the whole dataset — the memory-bounded path for
/// repositories holding samples with millions of regions. The callback
/// may return `false` to stop early (remaining samples are not read).
pub fn read_dataset_streaming(
    dir: &Path,
    mut visit: impl FnMut(Sample) -> bool,
) -> Result<Schema, FormatError> {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_owned());
    let schema = parse_schema(&fs::read_to_string(dir.join("schema.gdm"))?)?;
    let files = dir.join("files");
    let mut entries: Vec<_> = fs::read_dir(&files)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "gdm").unwrap_or(false))
        .collect();
    entries.sort();
    for region_path in entries {
        let stem =
            region_path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let regions = parse_regions(&fs::read_to_string(&region_path)?, &schema)?;
        let meta_path = files.join(format!("{stem}.gdm.meta"));
        let metadata = if meta_path.exists() {
            parse_metadata(&fs::read_to_string(&meta_path)?)?
        } else {
            Metadata::new()
        };
        let sample = Sample::new(stem, &name).with_regions(regions).with_metadata(metadata);
        if !visit(sample) {
            break;
        }
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::Attribute;

    fn sample_dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("PEAKS", schema);
        ds.add_sample(
            Sample::new("s1", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 2940, 3400, Strand::Pos).with_values(vec![0.0001.into()]),
                    GRegion::new("chr2", 120, 680, Strand::Neg).with_values(vec![0.00002.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("karyotype", "cancer")])),
        )
        .unwrap();
        ds.add_sample(
            Sample::new("s2", "PEAKS")
                .with_regions(vec![GRegion::new("chr1", 886, 1456, Strand::Unstranded)
                    .with_values(vec![0.0004.into()])])
                .with_metadata(Metadata::from_pairs([("sex", "female")])),
        )
        .unwrap();
        ds
    }

    #[test]
    fn schema_roundtrip() {
        let ds = sample_dataset();
        let parsed = parse_schema(&render_schema(&ds.schema)).unwrap();
        assert_eq!(parsed, ds.schema);
    }

    #[test]
    fn regions_roundtrip() {
        let ds = sample_dataset();
        let body = render_regions(&ds.samples[0].regions);
        let parsed = parse_regions(&body, &ds.schema).unwrap();
        assert_eq!(parsed, ds.samples[0].regions);
    }

    #[test]
    fn metadata_roundtrip() {
        let meta = Metadata::from_pairs([("a", "1"), ("b", "x y z")]);
        assert_eq!(parse_metadata(&render_metadata(&meta)).unwrap(), meta);
    }

    #[test]
    fn arity_mismatch_detected() {
        let schema = Schema::new(vec![Attribute::new("x", ValueType::Int)]).unwrap();
        assert!(parse_regions("chr1\t0\t5\t+\n", &schema).is_err());
    }

    #[test]
    fn streaming_reader_visits_and_stops() {
        let ds = sample_dataset();
        let dir = std::env::temp_dir().join(format!("nggc_stream_{}", std::process::id()));
        let dsdir = dir.join("PEAKS");
        write_dataset(&ds, &dsdir).unwrap();

        let mut seen = Vec::new();
        let schema = read_dataset_streaming(&dsdir, |s| {
            seen.push((s.name.clone(), s.region_count()));
            true
        })
        .unwrap();
        assert_eq!(schema, ds.schema);
        assert_eq!(seen, vec![("s1".to_string(), 2), ("s2".to_string(), 1)]);

        // Early stop after the first sample.
        let mut count = 0;
        read_dataset_streaming(&dsdir, |_| {
            count += 1;
            false
        })
        .unwrap();
        assert_eq!(count, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_disk_roundtrip() {
        let ds = sample_dataset();
        let dir = std::env::temp_dir().join(format!("nggc_native_{}", std::process::id()));
        let dsdir = dir.join("PEAKS");
        write_dataset(&ds, &dsdir).unwrap();
        let back = read_dataset(&dsdir).unwrap();
        assert_eq!(back.name, "PEAKS");
        assert_eq!(back.schema, ds.schema);
        assert_eq!(back.sample_count(), 2);
        assert_eq!(back.sample_by_name("s1").unwrap().regions, ds.samples[0].regions);
        assert!(back.sample_by_name("s2").unwrap().metadata.has("sex", "female"));
        fs::remove_dir_all(&dir).ok();
    }
}
