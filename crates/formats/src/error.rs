//! Error type for format parsing and serialisation.

use nggc_gdm::GdmError;
use std::fmt;

/// Errors raised while reading or writing genomic data files.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed input line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// A model-level violation (schema/type errors).
    Model(GdmError),
    /// The file extension or content matches no known format.
    UnknownFormat(String),
    /// A corrupt binary container (native v2).
    Corrupt {
        /// Byte offset where decoding failed.
        offset: usize,
        /// Explanation of the problem.
        reason: String,
    },
    /// A stored checksum did not match the bytes it covers (native v2
    /// header revision 3). Distinct from [`FormatError::Corrupt`]: the
    /// container structure parsed, but the payload bytes are not the
    /// ones that were written.
    ChecksumMismatch {
        /// Which section failed verification (`"file"` for the
        /// whole-container trailer, `"<sample>/<chrom>"` for a block).
        section: String,
        /// Checksum stored in the container.
        expected: u32,
        /// Checksum computed from the bytes on disk.
        got: u32,
    },
}

impl FormatError {
    /// Construct a [`FormatError::Malformed`].
    pub fn malformed(line: usize, reason: impl Into<String>) -> FormatError {
        FormatError::Malformed { line, reason: reason.into() }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            FormatError::Model(e) => write!(f, "model error: {e}"),
            FormatError::UnknownFormat(what) => write!(f, "unknown format: {what}"),
            FormatError::Corrupt { offset, reason } => {
                write!(f, "corrupt container at byte {offset}: {reason}")
            }
            FormatError::ChecksumMismatch { section, expected, got } => {
                write!(
                    f,
                    "checksum mismatch in section {section:?}: stored {expected:#010x}, \
                     computed {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            FormatError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

impl From<GdmError> for FormatError {
    fn from(e: GdmError) -> Self {
        FormatError::Model(e)
    }
}
