//! bedGraph — dense genomic signals.
//!
//! Signals ("regions with higher DNA read density", paper §1) are the
//! third major processed-data type. bedGraph rows are
//! `chrom start end value` with 0-based half-open coordinates.

use crate::error::FormatError;
use nggc_gdm::{Attribute, GRegion, Schema, Strand, Value, ValueType};

/// The GDM schema for bedGraph: a single float `signal` attribute.
pub fn bedgraph_schema() -> Schema {
    Schema::new(vec![Attribute::new("signal", ValueType::Float)])
        .expect("bedGraph schema attributes are valid")
}

/// Parse bedGraph text into regions under [`bedgraph_schema`].
pub fn parse_bedgraph(text: &str) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with("track") {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(FormatError::malformed(
                lineno,
                format!("expected 4 fields, found {}", fields.len()),
            ));
        }
        let start: u64 = fields[1]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad start {:?}", fields[1])))?;
        let end: u64 = fields[2]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad end {:?}", fields[2])))?;
        if end <= start {
            return Err(FormatError::malformed(lineno, "bedGraph intervals must be non-empty"));
        }
        let signal = Value::parse_as(fields[3], ValueType::Float)
            .map_err(|e| FormatError::malformed(lineno, e.to_string()))?;
        out.push(GRegion::new(fields[0], start, end, Strand::Unstranded).with_values(vec![signal]));
    }
    Ok(out)
}

/// Serialise regions (under [`bedgraph_schema`]) to bedGraph text.
pub fn write_bedgraph(regions: &[GRegion]) -> String {
    let mut out = String::new();
    for r in regions {
        let v = r.values.first().map(Value::render).unwrap_or_else(|| ".".into());
        out.push_str(&format!("{}\t{}\t{}\t{}\n", r.chrom, r.left, r.right, v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let rs = parse_bedgraph("chr1\t0\t100\t1.5\nchr1\t100\t200\t2.25\n").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1].values[0], Value::Float(2.25));
    }

    #[test]
    fn space_separated_accepted() {
        let rs = parse_bedgraph("chr1 0 10 3\n").unwrap();
        assert_eq!(rs[0].values[0], Value::Float(3.0));
    }

    #[test]
    fn empty_interval_rejected() {
        assert!(parse_bedgraph("chr1\t5\t5\t1\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let text = "chr1\t0\t100\t1.5\nchr2\t7\t9\t-0.25\n";
        let rs = parse_bedgraph(text).unwrap();
        assert_eq!(write_bedgraph(&rs), text);
    }
}
