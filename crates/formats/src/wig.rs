//! WIG (wiggle) — dense signal tracks.
//!
//! Two declaration styles, both 1-based:
//!
//! * `fixedStep chrom=chrN start=S step=T [span=W]` followed by one value
//!   per line;
//! * `variableStep chrom=chrN [span=W]` followed by `position value`
//!   lines.
//!
//! Each value becomes a GDM region of `span` bases with a `signal`
//! attribute — the same schema as bedGraph, so WIG tracks interoperate
//! with bedGraph signals out of the box.

use crate::bedgraph::bedgraph_schema;
use crate::error::FormatError;
use nggc_gdm::{GRegion, Schema, Strand, Value, ValueType};

/// The GDM schema for WIG: identical to bedGraph (`signal: float`).
pub fn wig_schema() -> Schema {
    bedgraph_schema()
}

#[derive(Debug, Clone)]
enum Mode {
    Fixed { chrom: String, next_start: u64, step: u64, span: u64 },
    Variable { chrom: String, span: u64 },
}

/// Parse WIG text into regions under [`wig_schema`].
pub fn parse_wig(text: &str) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    let mut mode: Option<Mode> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("track") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("fixedStep") {
            let (chrom, start, step, span) = parse_decl(rest, lineno, true)?;
            if start == 0 {
                return Err(FormatError::malformed(lineno, "WIG start is 1-based"));
            }
            mode = Some(Mode::Fixed { chrom, next_start: start - 1, step, span });
            continue;
        }
        if let Some(rest) = line.strip_prefix("variableStep") {
            let (chrom, _, _, span) = parse_decl(rest, lineno, false)?;
            mode = Some(Mode::Variable { chrom, span });
            continue;
        }
        match &mut mode {
            None => {
                return Err(FormatError::malformed(
                    lineno,
                    "value line before fixedStep/variableStep declaration",
                ))
            }
            Some(Mode::Fixed { chrom, next_start, step, span }) => {
                let signal = Value::parse_as(line, ValueType::Float)
                    .map_err(|e| FormatError::malformed(lineno, e.to_string()))?;
                // Declarations near u64::MAX would wrap the coordinate
                // arithmetic; reject instead of panicking under
                // overflow-checks.
                let right = next_start.checked_add(*span).ok_or_else(|| {
                    FormatError::malformed(lineno, "coordinate overflow (start + span)")
                })?;
                out.push(
                    GRegion::new(chrom.as_str(), *next_start, right, Strand::Unstranded)
                        .with_values(vec![signal]),
                );
                *next_start = next_start.checked_add(*step).ok_or_else(|| {
                    FormatError::malformed(lineno, "coordinate overflow (start + step)")
                })?;
            }
            Some(Mode::Variable { chrom, span }) => {
                let mut parts = line.split_whitespace();
                let pos: u64 = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| FormatError::malformed(lineno, "expected position"))?;
                if pos == 0 {
                    return Err(FormatError::malformed(lineno, "WIG positions are 1-based"));
                }
                let value =
                    parts.next().ok_or_else(|| FormatError::malformed(lineno, "expected value"))?;
                let signal = Value::parse_as(value, ValueType::Float)
                    .map_err(|e| FormatError::malformed(lineno, e.to_string()))?;
                let right = (pos - 1).checked_add(*span).ok_or_else(|| {
                    FormatError::malformed(lineno, "coordinate overflow (position + span)")
                })?;
                out.push(
                    GRegion::new(chrom.as_str(), pos - 1, right, Strand::Unstranded)
                        .with_values(vec![signal]),
                );
            }
        }
    }
    Ok(out)
}

fn parse_decl(
    rest: &str,
    lineno: usize,
    require_start: bool,
) -> Result<(String, u64, u64, u64), FormatError> {
    let mut chrom = None;
    let mut start = None;
    let mut step = None;
    let mut span = 1u64;
    for part in rest.split_whitespace() {
        let Some((k, v)) = part.split_once('=') else {
            return Err(FormatError::malformed(lineno, format!("bad declaration field {part:?}")));
        };
        match k {
            "chrom" => chrom = Some(v.to_owned()),
            "start" => {
                start = Some(
                    v.parse()
                        .map_err(|_| FormatError::malformed(lineno, format!("bad start {v:?}")))?,
                )
            }
            "step" => {
                step = Some(
                    v.parse()
                        .map_err(|_| FormatError::malformed(lineno, format!("bad step {v:?}")))?,
                )
            }
            "span" => {
                span = v
                    .parse()
                    .map_err(|_| FormatError::malformed(lineno, format!("bad span {v:?}")))?
            }
            other => {
                return Err(FormatError::malformed(lineno, format!("unknown field {other:?}")))
            }
        }
    }
    let chrom = chrom.ok_or_else(|| FormatError::malformed(lineno, "declaration missing chrom"))?;
    if span == 0 {
        return Err(FormatError::malformed(lineno, "span must be positive"));
    }
    if require_start {
        let start =
            start.ok_or_else(|| FormatError::malformed(lineno, "fixedStep requires start"))?;
        let step = step.unwrap_or(span);
        Ok((chrom, start, step, span))
    } else {
        Ok((chrom, 0, 0, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_step_positions() {
        let text = "fixedStep chrom=chr1 start=101 step=100 span=25\n1.5\n2.5\n3.5\n";
        let rs = parse_wig(text).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!((rs[0].left, rs[0].right), (100, 125));
        assert_eq!((rs[1].left, rs[1].right), (200, 225));
        assert_eq!(rs[2].values[0], Value::Float(3.5));
    }

    #[test]
    fn variable_step_positions() {
        let text = "variableStep chrom=chr2 span=10\n51 7.0\n201 9.0\n";
        let rs = parse_wig(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (50, 60));
        assert_eq!((rs[1].left, rs[1].right), (200, 210));
    }

    #[test]
    fn default_step_equals_span_and_default_span_one() {
        let text = "fixedStep chrom=chr1 start=1 step=1\n5\n6\n";
        let rs = parse_wig(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (0, 1));
        assert_eq!((rs[1].left, rs[1].right), (1, 2));
    }

    #[test]
    fn multiple_declarations_switch_context() {
        let text = "fixedStep chrom=chr1 start=1 step=5 span=5\n1\nvariableStep chrom=chr2\n10 2\n";
        let rs = parse_wig(text).unwrap();
        assert_eq!(rs[0].chrom.as_str(), "chr1");
        assert_eq!(rs[1].chrom.as_str(), "chr2");
        assert_eq!(rs[1].len(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse_wig("5.0\n").is_err(), "value before declaration");
        assert!(parse_wig("fixedStep chrom=chr1 step=1\n1\n").is_err(), "missing start");
        assert!(parse_wig("fixedStep chrom=chr1 start=0 step=1\n1\n").is_err(), "0 start");
        assert!(parse_wig("variableStep chrom=chr1\n0 5\n").is_err(), "0 position");
        assert!(parse_wig("fixedStep chrom=chr1 start=1 step=1 span=0\n").is_err(), "0 span");
        assert!(parse_wig("fixedStep bogus\n").is_err());
    }

    #[test]
    fn track_lines_skipped_and_schema_matches() {
        let text = "track type=wiggle_0\nfixedStep chrom=chr1 start=1 step=1\n2.25\n";
        let rs = parse_wig(text).unwrap();
        wig_schema().check_row(&rs[0].values).unwrap();
    }
}
