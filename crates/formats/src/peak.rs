//! ENCODE narrowPeak / broadPeak formats.
//!
//! These are the processed ChIP-seq outputs that the paper's §2 example
//! (the PEAKS dataset, Figure 2) models: each region carries the peak's
//! statistical significance among other calling attributes.
//!
//! narrowPeak = BED6 + `signalValue pValue qValue peak` (10 columns);
//! broadPeak  = BED6 + `signalValue pValue qValue`       (9 columns).

use crate::error::FormatError;
use nggc_gdm::{Attribute, GRegion, Schema, Strand, Value, ValueType};

/// Which peak flavour to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeakKind {
    /// 10-column ENCODE narrowPeak (point-source calls).
    Narrow,
    /// 9-column ENCODE broadPeak (broad enriched domains).
    Broad,
}

impl PeakKind {
    /// Total column count of the flavour.
    pub fn columns(self) -> usize {
        match self {
            PeakKind::Narrow => 10,
            PeakKind::Broad => 9,
        }
    }

    /// The GDM schema of the flavour's variable attributes.
    pub fn schema(self) -> Schema {
        let mut attrs = vec![
            Attribute::new("name", ValueType::Str),
            Attribute::new("score", ValueType::Float),
            Attribute::new("signal_value", ValueType::Float),
            Attribute::new("p_value", ValueType::Float),
            Attribute::new("q_value", ValueType::Float),
        ];
        if self == PeakKind::Narrow {
            attrs.push(Attribute::new("peak", ValueType::Int));
        }
        Schema::new(attrs).expect("peak schema attributes are valid")
    }
}

/// Parse narrowPeak/broadPeak text into regions.
pub fn parse_peaks(text: &str, kind: PeakKind) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with("track") {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < kind.columns() {
            return Err(FormatError::malformed(
                lineno,
                format!("expected {} fields, found {}", kind.columns(), fields.len()),
            ));
        }
        let start: u64 = fields[1]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad start {:?}", fields[1])))?;
        let end: u64 = fields[2]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad end {:?}", fields[2])))?;
        if end < start {
            return Err(FormatError::malformed(lineno, format!("end {end} < start {start}")));
        }
        let strand = Strand::parse(fields[5])
            .ok_or_else(|| FormatError::malformed(lineno, format!("bad strand {:?}", fields[5])))?;

        let parse = |col: usize, ty: ValueType| -> Result<Value, FormatError> {
            // ENCODE uses -1 for "not assigned" in p/q/peak columns;
            // preserve it verbatim (downstream predicates filter on it).
            Value::parse_as(fields[col], ty)
                .map_err(|e| FormatError::malformed(lineno, e.to_string()))
        };

        let mut values = vec![
            parse(3, ValueType::Str)?,
            parse(4, ValueType::Float)?,
            parse(6, ValueType::Float)?,
            parse(7, ValueType::Float)?,
            parse(8, ValueType::Float)?,
        ];
        if kind == PeakKind::Narrow {
            values.push(parse(9, ValueType::Int)?);
        }
        out.push(GRegion::new(fields[0], start, end, strand).with_values(values));
    }
    Ok(out)
}

/// Serialise regions in narrowPeak/broadPeak layout.
pub fn write_peaks(regions: &[GRegion], kind: PeakKind) -> String {
    let mut out = String::new();
    for r in regions {
        let v = |i: usize| r.values.get(i).map(Value::render).unwrap_or_else(|| ".".into());
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.chrom,
            r.left,
            r.right,
            v(0),
            v(1),
            r.strand.symbol(),
            v(2),
            v(3),
            v(4),
        ));
        if kind == PeakKind::Narrow {
            out.push('\t');
            out.push_str(&v(5));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const NARROW: &str = "chr1\t9356548\t9356648\tpeak_1\t182\t.\t6.1\t-1\t5.2\t50\n";

    #[test]
    fn narrowpeak_parses_all_columns() {
        let rs = parse_peaks(NARROW, PeakKind::Narrow).unwrap();
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        assert_eq!(r.len(), 100);
        assert_eq!(r.values[0], Value::Str("peak_1".into()));
        assert_eq!(r.values[2], Value::Float(6.1));
        assert_eq!(r.values[3], Value::Float(-1.0), "ENCODE 'not assigned' preserved");
        assert_eq!(r.values[5], Value::Int(50));
    }

    #[test]
    fn broadpeak_has_nine_columns() {
        let text = "chr2\t100\t900\tbp1\t55\t+\t3.3\t0.01\t0.05\n";
        let rs = parse_peaks(text, PeakKind::Broad).unwrap();
        assert_eq!(rs[0].values.len(), 5);
        assert_eq!(rs[0].strand, Strand::Pos);
        assert!(parse_peaks(text, PeakKind::Narrow).is_err(), "narrow needs 10 columns");
    }

    #[test]
    fn schema_shapes() {
        assert_eq!(PeakKind::Narrow.schema().len(), 6);
        assert_eq!(PeakKind::Broad.schema().len(), 5);
        assert_eq!(PeakKind::Narrow.schema().get("p_value").unwrap().ty, ValueType::Float);
    }

    #[test]
    fn roundtrip() {
        let rs = parse_peaks(NARROW, PeakKind::Narrow).unwrap();
        let text = write_peaks(&rs, PeakKind::Narrow);
        let rs2 = parse_peaks(&text, PeakKind::Narrow).unwrap();
        assert_eq!(rs, rs2);
    }
}
