//! GDM native on-disk format, version 2: binary columnar storage.
//!
//! Version 1 ([`crate::native`]) keeps a dataset as text TSV files that
//! must be re-tokenised and re-parsed on every cold read. Version 2
//! stores the same logical content — schema, per-sample regions and
//! metadata — in a single binary container designed around how region
//! data is actually shaped: sorted coordinates compress well as deltas,
//! strands fit in two bits, and a column of one declared type decodes
//! without per-cell dispatch.
//!
//! ```text
//! <dataset>/
//!   data.gdm2             # the whole dataset, one container file
//! ```
//!
//! ## Container layout
//!
//! All integers are LEB128 varints unless stated otherwise; `str` means
//! varint byte length followed by UTF-8 bytes.
//!
//! ```text
//! magic           8 bytes  "NGGCGDM2"
//! version         1 byte   (2 or 3)
//! dataset name    str
//! schema          varint n_attrs, then per attribute: str name, u8 type tag
//! sample count    varint
//! per sample:
//!   name          str
//!   metadata      varint n_pairs, then per pair: str key, str value
//!   chrom index   varint n_chroms, then per chromosome:
//!                   str name, varint n_regions, varint block_bytes
//!                   [v3] u32 LE CRC32C of the chromosome block
//!   chrom blocks  back-to-back, in index order
//! [v3] trailer    u32 LE CRC32C over every preceding byte of the file
//! ```
//!
//! The chromosome index doubles as an offset table: `block_bytes` lets a
//! reader *skip* any chromosome without decoding it, which is what
//! [`read_dataset_v2_chrom`] uses for chromosome-granular reads.
//!
//! ## Header revision 3: checksums
//!
//! Revision 3 keeps the byte layout of revision 2 and adds integrity
//! metadata: each chromosome index entry carries a CRC32C (Castagnoli)
//! of its block, and the file ends with a CRC32C trailer covering every
//! preceding byte. Verification is *lazy per section read*: a full
//! decode checks the trailer up front, a chromosome-granular read
//! checks only the blocks it actually decodes — a flipped bit in one
//! chromosome fails that chromosome's read with
//! [`FormatError::ChecksumMismatch`] while every other section of the
//! same container stays readable. Writers emit revision 3; readers
//! accept both, so containers from the previous release load unchanged.
//!
//! ## Chromosome block encoding
//!
//! Regions of one chromosome are stored column-major:
//!
//! 1. **lefts** — zigzag varint deltas from the previous left (first
//!    delta from 0). Sorted input makes these small positive numbers;
//!    zigzag keeps unsorted input safe.
//! 2. **lengths** — varint `right - left` per region (never negative by
//!    the [`GRegion`] invariant).
//! 3. **strands** — 2 bits per region (`0=+`, `1=-`, `2=*`), packed
//!    four per byte.
//! 4. **value columns**, one per schema attribute, each a null bitmap
//!    (1 bit per region) followed by the non-null payloads in row
//!    order: `int` as zigzag varint, `float` as 8 raw little-endian
//!    bytes (NaN-exact), `bool` packed 8 per byte, `string` as `str`.
//!
//! Type tags: `0=int`, `1=float`, `2=string`, `3=bool`.

use crate::error::FormatError;
use crate::native;
use nggc_engine::WorkerPool;
use nggc_gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, Value, ValueType};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;
use std::sync::OnceLock;

/// Shared worker pool for block decoding. Sized to the machine once and
/// reused across every decode so concurrent loads don't oversubscribe
/// the CPU with nested pools.
static DECODE_POOL: OnceLock<WorkerPool> = OnceLock::new();

fn decode_pool() -> &'static WorkerPool {
    DECODE_POOL.get_or_init(WorkerPool::with_default_size)
}

/// What a pruned read should decode: which chromosome blocks and which
/// value columns. `None` means "everything" for either axis, so the
/// default options describe a full read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOptions {
    /// Chromosomes to decode; blocks for any other chromosome are
    /// skipped via the offset index. `None` decodes every chromosome.
    pub chroms: Option<BTreeSet<String>>,
    /// Value columns to decode, matched case-insensitively against the
    /// schema. Skipped columns are filled with [`Value::Null`] so the
    /// schema (and every region's value arity) stays stable. `None`
    /// decodes every column.
    pub columns: Option<BTreeSet<String>>,
}

impl ScanOptions {
    /// True when the options restrict neither chromosomes nor columns —
    /// a pruned read with full options is exactly a full read.
    pub fn is_full(&self) -> bool {
        self.chroms.is_none() && self.columns.is_none()
    }

    fn wants_chrom(&self, chrom: &str) -> bool {
        self.chroms.as_ref().is_none_or(|set| set.contains(chrom))
    }
}

/// What a pruned read actually touched, for observability: block and
/// byte counts of decoded vs skipped chromosome blocks, plus the total
/// container size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chromosome blocks decoded.
    pub blocks_read: u64,
    /// Chromosome blocks skipped via the offset index.
    pub blocks_skipped: u64,
    /// Bytes of chromosome blocks decoded.
    pub bytes_read: u64,
    /// Bytes of chromosome blocks skipped without decoding.
    pub bytes_skipped: u64,
    /// Total size of the container file in bytes.
    pub container_bytes: u64,
}

/// Magic bytes opening every v2 container.
pub const MAGIC: &[u8; 8] = b"NGGCGDM2";

/// Header revision written by this release: per-block CRC32C plus a
/// whole-file trailer checksum.
pub const VERSION: u8 = 3;

/// Header revision of the previous release: no checksums. Still fully
/// readable; [`encode_dataset_v2_legacy`] emits it for compatibility
/// tests.
pub const VERSION_LEGACY: u8 = 2;

/// Container file name inside a dataset directory.
pub const CONTAINER_FILE: &str = "data.gdm2";

/// Which on-disk layout a dataset directory uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageVersion {
    /// Text TSV side-by-side files (`schema.gdm` + `files/*.gdm`).
    V1,
    /// Binary columnar container (`data.gdm2`).
    V2,
}

impl StorageVersion {
    /// Short name for logs and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            StorageVersion::V1 => "v1",
            StorageVersion::V2 => "v2",
        }
    }
}

/// Detect the storage version of a dataset directory by magic bytes:
/// a `data.gdm2` file starting with [`MAGIC`] means v2, a `schema.gdm`
/// file means v1, anything else is unrecognised.
pub fn detect_version(dir: &Path) -> Option<StorageVersion> {
    let container = dir.join(CONTAINER_FILE);
    if let Ok(mut f) = fs::File::open(&container) {
        use std::io::Read;
        let mut head = [0u8; 8];
        if f.read_exact(&mut head).is_ok() && &head == MAGIC {
            return Some(StorageVersion::V2);
        }
    }
    if dir.join("schema.gdm").exists() {
        return Some(StorageVersion::V1);
    }
    None
}

/// Read a dataset in whichever version the directory holds (v2 binary
/// preferred, v1 text fallback).
pub fn read_dataset_auto(dir: &Path) -> Result<Dataset, FormatError> {
    match detect_version(dir) {
        Some(StorageVersion::V2) => read_dataset_v2(dir),
        Some(StorageVersion::V1) => native::read_dataset(dir),
        None => Err(FormatError::UnknownFormat(format!(
            "{}: neither a v2 container nor a v1 native dataset",
            dir.display()
        ))),
    }
}

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli)
// ---------------------------------------------------------------------------

const fn crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial, the iSCSI/ext4 variant.
    const POLY: u32 = 0x82f6_3b78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_table();

/// CRC32C (Castagnoli) of `bytes` — the checksum revision-3 containers
/// store per chromosome block and as the whole-file trailer.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Byte cursor with offset-carrying decode errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn corrupt(&self, reason: impl Into<String>) -> FormatError {
        FormatError::Corrupt { offset: self.pos, reason: reason.into() }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("need {n} bytes past end of container")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.bytes(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, FormatError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(self.corrupt("varint longer than 64 bits"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn len_prefixed(&mut self, what: &str) -> Result<usize, FormatError> {
        let n = self.varint()?;
        usize::try_from(n)
            .ok()
            .filter(|&n| n <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("{what} length {n} exceeds container size")))
    }

    fn string(&mut self) -> Result<String, FormatError> {
        let n = self.len_prefixed("string")?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid UTF-8 string"))
    }

    fn skip(&mut self, n: usize) -> Result<(), FormatError> {
        self.bytes(n).map(|_| ())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Str => 2,
        ValueType::Bool => 3,
    }
}

fn type_from_tag(tag: u8, cur: &Cursor<'_>) -> Result<ValueType, FormatError> {
    match tag {
        0 => Ok(ValueType::Int),
        1 => Ok(ValueType::Float),
        2 => Ok(ValueType::Str),
        3 => Ok(ValueType::Bool),
        other => Err(cur.corrupt(format!("unknown value type tag {other}"))),
    }
}

fn strand_bits(s: Strand) -> u8 {
    match s {
        Strand::Pos => 0,
        Strand::Neg => 1,
        Strand::Unstranded => 2,
    }
}

fn strand_from_bits(bits: u8, cur: &Cursor<'_>) -> Result<Strand, FormatError> {
    match bits {
        0 => Ok(Strand::Pos),
        1 => Ok(Strand::Neg),
        2 => Ok(Strand::Unstranded),
        other => Err(cur.corrupt(format!("invalid strand bits {other}"))),
    }
}

/// Encode one chromosome's regions (all sharing a chromosome) into a
/// column-major block.
fn encode_chrom_block(
    regions: &[&GRegion],
    schema: &Schema,
    out: &mut Vec<u8>,
) -> Result<(), FormatError> {
    // Column 1: lefts as zigzag deltas.
    let mut prev: i64 = 0;
    for r in regions {
        let left = i64::try_from(r.left)
            .map_err(|_| FormatError::Corrupt { offset: 0, reason: "left exceeds i64".into() })?;
        put_varint(out, zigzag(left - prev));
        prev = left;
    }
    // Column 2: lengths.
    for r in regions {
        put_varint(out, r.right - r.left);
    }
    // Column 3: strands, 2 bits each.
    let mut byte = 0u8;
    for (i, r) in regions.iter().enumerate() {
        byte |= strand_bits(r.strand) << ((i % 4) * 2);
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !regions.is_empty() && !regions.len().is_multiple_of(4) {
        out.push(byte);
    }
    // Value columns: null bitmap + typed payload.
    for (col, attr) in schema.attributes().iter().enumerate() {
        let mut bitmap = vec![0u8; regions.len().div_ceil(8)];
        for (i, r) in regions.iter().enumerate() {
            let v = r.values.get(col).unwrap_or(&Value::Null);
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);
        match attr.ty {
            ValueType::Int => {
                for r in regions {
                    match r.values.get(col).unwrap_or(&Value::Null) {
                        Value::Int(v) => put_varint(out, zigzag(*v)),
                        Value::Null => {}
                        other => return Err(column_type_error(&attr.name, other)),
                    }
                }
            }
            ValueType::Float => {
                for r in regions {
                    match r.values.get(col).unwrap_or(&Value::Null) {
                        Value::Float(v) => out.extend_from_slice(&v.to_bits().to_le_bytes()),
                        Value::Null => {}
                        other => return Err(column_type_error(&attr.name, other)),
                    }
                }
            }
            ValueType::Bool => {
                let mut bits = Vec::new();
                for r in regions {
                    match r.values.get(col).unwrap_or(&Value::Null) {
                        Value::Bool(v) => bits.push(*v),
                        Value::Null => {}
                        other => return Err(column_type_error(&attr.name, other)),
                    }
                }
                let mut byte = 0u8;
                for (i, b) in bits.iter().enumerate() {
                    if *b {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if !bits.is_empty() && bits.len() % 8 != 0 {
                    out.push(byte);
                }
            }
            ValueType::Str => {
                for r in regions {
                    match r.values.get(col).unwrap_or(&Value::Null) {
                        Value::Str(s) => put_str(out, s),
                        Value::Null => {}
                        other => return Err(column_type_error(&attr.name, other)),
                    }
                }
            }
        }
    }
    Ok(())
}

fn column_type_error(attr: &str, value: &Value) -> FormatError {
    FormatError::Corrupt {
        offset: 0,
        reason: format!("column {attr:?} cannot encode a {value:?} value"),
    }
}

/// Serialise a whole dataset into container bytes at the current header
/// revision ([`VERSION`]): per-block CRC32C entries plus a whole-file
/// trailer checksum.
pub fn encode_dataset_v2(dataset: &Dataset) -> Result<Vec<u8>, FormatError> {
    encode_dataset_with_version(dataset, VERSION)
}

/// Serialise a dataset as the previous release wrote it (header
/// revision 2, no checksums). Exists so compatibility tests can prove
/// old containers still load; new code should use
/// [`encode_dataset_v2`].
pub fn encode_dataset_v2_legacy(dataset: &Dataset) -> Result<Vec<u8>, FormatError> {
    encode_dataset_with_version(dataset, VERSION_LEGACY)
}

fn encode_dataset_with_version(dataset: &Dataset, version: u8) -> Result<Vec<u8>, FormatError> {
    debug_assert!(version == VERSION_LEGACY || version == VERSION);
    let checksums = version >= VERSION;
    let mut out = Vec::with_capacity(64 * 1024);
    out.extend_from_slice(MAGIC);
    out.push(version);
    put_str(&mut out, &dataset.name);
    // Schema block.
    put_varint(&mut out, dataset.schema.len() as u64);
    for a in dataset.schema.attributes() {
        put_str(&mut out, &a.name);
        out.push(type_tag(a.ty));
    }
    put_varint(&mut out, dataset.samples.len() as u64);
    for sample in &dataset.samples {
        put_str(&mut out, &sample.name);
        // Metadata pairs.
        let pairs: Vec<(&str, &str)> = sample.metadata.iter().collect();
        put_varint(&mut out, pairs.len() as u64);
        for (k, v) in pairs {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        // Group regions per chromosome, preserving first-appearance order
        // (identical to region order for sorted samples).
        let mut chrom_order: Vec<&str> = Vec::new();
        let mut groups: Vec<Vec<&GRegion>> = Vec::new();
        for r in &sample.regions {
            match chrom_order.iter().position(|c| *c == r.chrom.as_str()) {
                Some(i) => groups[i].push(r),
                None => {
                    chrom_order.push(r.chrom.as_str());
                    groups.push(vec![r]);
                }
            }
        }
        // Encode blocks first so the index can carry byte lengths.
        let mut blocks: Vec<Vec<u8>> = Vec::with_capacity(groups.len());
        for group in &groups {
            let mut block = Vec::new();
            encode_chrom_block(group, &dataset.schema, &mut block)?;
            blocks.push(block);
        }
        put_varint(&mut out, chrom_order.len() as u64);
        for ((chrom, group), block) in chrom_order.iter().zip(&groups).zip(&blocks) {
            put_str(&mut out, chrom);
            put_varint(&mut out, group.len() as u64);
            put_varint(&mut out, block.len() as u64);
            if checksums {
                out.extend_from_slice(&crc32c(block).to_le_bytes());
            }
        }
        for block in &blocks {
            out.extend_from_slice(block);
        }
    }
    if checksums {
        let trailer = crc32c(&out);
        out.extend_from_slice(&trailer.to_le_bytes());
    }
    Ok(out)
}

/// Write a dataset to `dir` as a v2 binary container, creating
/// directories. Returns the container size in bytes.
pub fn write_dataset_v2(dataset: &Dataset, dir: &Path) -> Result<u64, FormatError> {
    let bytes = encode_dataset_v2(dataset)?;
    fs::create_dir_all(dir)?;
    fs::write(dir.join(CONTAINER_FILE), &bytes)?;
    Ok(bytes.len() as u64)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn decode_chrom_block(
    cur: &mut Cursor<'_>,
    chrom: &str,
    n: usize,
    schema: &Schema,
    out: &mut Vec<GRegion>,
) -> Result<(), FormatError> {
    decode_chrom_block_cols(cur, chrom, n, schema, None, out)
}

/// Decode one chromosome block, optionally materialising only the
/// schema columns whose `keep` entry is true. Masked-out columns are
/// still *consumed* (the cursor must land exactly at the block's end)
/// but their payloads are skipped and their cells filled with
/// [`Value::Null`], so region value arity matches the schema either way.
fn decode_chrom_block_cols(
    cur: &mut Cursor<'_>,
    chrom: &str,
    n: usize,
    schema: &Schema,
    keep: Option<&[bool]>,
    out: &mut Vec<GRegion>,
) -> Result<(), FormatError> {
    let base = out.len();
    // Each region contributes at least one byte (its left-delta varint),
    // so a count beyond the remaining bytes is corrupt — reject it before
    // sizing any allocation from it.
    if n > cur.buf.len().saturating_sub(cur.pos) {
        return Err(cur.corrupt(format!("region count {n} exceeds remaining container bytes")));
    }
    // Coordinates.
    let mut prev: i64 = 0;
    let mut lefts = Vec::with_capacity(n);
    for _ in 0..n {
        let delta = unzigzag(cur.varint()?);
        prev =
            prev.checked_add(delta).ok_or_else(|| cur.corrupt("left coordinate overflows i64"))?;
        if prev < 0 {
            return Err(cur.corrupt("negative left coordinate"));
        }
        lefts.push(prev as u64);
    }
    for &left in &lefts {
        let len = cur.varint()?;
        let right =
            left.checked_add(len).ok_or_else(|| cur.corrupt("right coordinate overflows u64"))?;
        out.push(GRegion::new(chrom, left, right, Strand::Unstranded));
    }
    // Strands.
    let strand_bytes = cur.bytes(n.div_ceil(4))?.to_vec();
    for i in 0..n {
        let bits = (strand_bytes[i / 4] >> ((i % 4) * 2)) & 0b11;
        out[base + i].strand = strand_from_bits(bits, cur)?;
    }
    if !schema.is_empty() {
        for r in &mut out[base..] {
            r.values = Vec::with_capacity(schema.len());
        }
    }
    // Value columns.
    for (ci, attr) in schema.attributes().iter().enumerate() {
        let bitmap = cur.bytes(n.div_ceil(8))?.to_vec();
        let is_null = |i: usize| bitmap[i / 8] & (1 << (i % 8)) != 0;
        if !keep.is_none_or(|k| k[ci]) {
            skip_column_payload(cur, attr.ty, n, &is_null)?;
            for r in &mut out[base..] {
                r.values.push(Value::Null);
            }
            continue;
        }
        match attr.ty {
            ValueType::Int => {
                for i in 0..n {
                    let v =
                        if is_null(i) { Value::Null } else { Value::Int(unzigzag(cur.varint()?)) };
                    out[base + i].values.push(v);
                }
            }
            ValueType::Float => {
                for i in 0..n {
                    let v = if is_null(i) {
                        Value::Null
                    } else {
                        let raw = cur.bytes(8)?;
                        let bits = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                        Value::Float(f64::from_bits(bits))
                    };
                    out[base + i].values.push(v);
                }
            }
            ValueType::Bool => {
                let non_null = (0..n).filter(|&i| !is_null(i)).count();
                let packed = cur.bytes(non_null.div_ceil(8))?.to_vec();
                let mut k = 0usize;
                for i in 0..n {
                    let v = if is_null(i) {
                        Value::Null
                    } else {
                        let b = packed[k / 8] & (1 << (k % 8)) != 0;
                        k += 1;
                        Value::Bool(b)
                    };
                    out[base + i].values.push(v);
                }
            }
            ValueType::Str => {
                for i in 0..n {
                    let v = if is_null(i) { Value::Null } else { Value::Str(cur.string()?) };
                    out[base + i].values.push(v);
                }
            }
        }
    }
    Ok(())
}

/// Advance the cursor past one column's payload without materialising
/// values. The null bitmap has already been consumed; `is_null` answers
/// from it.
fn skip_column_payload(
    cur: &mut Cursor<'_>,
    ty: ValueType,
    n: usize,
    is_null: &impl Fn(usize) -> bool,
) -> Result<(), FormatError> {
    match ty {
        ValueType::Int => {
            for i in 0..n {
                if !is_null(i) {
                    cur.varint()?;
                }
            }
        }
        ValueType::Float => {
            let non_null = (0..n).filter(|&i| !is_null(i)).count();
            let payload = non_null
                .checked_mul(8)
                .ok_or_else(|| cur.corrupt("float column payload overflows usize"))?;
            cur.skip(payload)?;
        }
        ValueType::Bool => {
            let non_null = (0..n).filter(|&i| !is_null(i)).count();
            cur.skip(non_null.div_ceil(8))?;
        }
        ValueType::Str => {
            for i in 0..n {
                if !is_null(i) {
                    let len = cur.len_prefixed("string")?;
                    cur.skip(len)?;
                }
            }
        }
    }
    Ok(())
}

/// Magic and version byte; errors on unknown header revisions.
fn decode_version(cur: &mut Cursor<'_>) -> Result<u8, FormatError> {
    let magic = cur.bytes(8)?;
    if magic != MAGIC {
        return Err(cur.corrupt("bad magic: not a v2 container"));
    }
    let version = cur.u8()?;
    if version != VERSION_LEGACY && version != VERSION {
        return Err(cur.corrupt(format!("unsupported container version {version}")));
    }
    Ok(version)
}

/// Dataset name and schema, leaving the cursor at the sample count.
fn decode_schema_block(cur: &mut Cursor<'_>) -> Result<(String, Schema), FormatError> {
    let name = cur.string()?;
    let n_attrs = cur.len_prefixed("schema")?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let attr_name = cur.string()?;
        let tag = cur.u8()?;
        attrs.push(Attribute::new(attr_name, type_from_tag(tag, cur)?));
    }
    let schema = Schema::new(attrs).map_err(|e| cur.corrupt(format!("invalid schema: {e}")))?;
    Ok((name, schema))
}

/// Container header: version, dataset name and schema, leaving the
/// cursor at the sample count.
fn decode_header(cur: &mut Cursor<'_>) -> Result<(String, Schema, u8), FormatError> {
    let version = decode_version(cur)?;
    let (name, schema) = decode_schema_block(cur)?;
    Ok((name, schema, version))
}

/// Verify the whole-file CRC32C trailer of a revision-3 container.
fn verify_trailer(buf: &[u8]) -> Result<(), FormatError> {
    // 8 magic + 1 version + 4 trailer is the absolute minimum.
    if buf.len() < 13 {
        return Err(FormatError::Corrupt {
            offset: buf.len(),
            reason: "container too short to hold a checksum trailer".into(),
        });
    }
    let body = &buf[..buf.len() - 4];
    let expected = u32::from_le_bytes(buf[buf.len() - 4..].try_into().expect("4 bytes"));
    let got = crc32c(body);
    if got != expected {
        return Err(FormatError::ChecksumMismatch { section: "file".into(), expected, got });
    }
    Ok(())
}

/// Verify the CRC32C a revision-3 index entry stores for the block that
/// starts at the cursor, without consuming it. Revision-2 entries carry
/// no checksum and pass trivially.
fn verify_block(
    cur: &Cursor<'_>,
    sample: &str,
    entry: &ChromIndexEntry,
) -> Result<(), FormatError> {
    let Some(expected) = entry.crc else { return Ok(()) };
    let n = usize::try_from(entry.bytes).map_err(|_| cur.corrupt("block extent exceeds usize"))?;
    let end = cur
        .pos
        .checked_add(n)
        .filter(|&e| e <= cur.buf.len())
        .ok_or_else(|| cur.corrupt(format!("block extent {n} exceeds remaining bytes")))?;
    let got = crc32c(&cur.buf[cur.pos..end]);
    if got != expected {
        return Err(FormatError::ChecksumMismatch {
            section: format!("{sample}/{}", entry.chrom),
            expected,
            got,
        });
    }
    Ok(())
}

/// One chromosome's entry in a sample's block index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromIndexEntry {
    /// Chromosome name.
    pub chrom: String,
    /// Regions in the block.
    pub regions: u64,
    /// Encoded block size in bytes.
    pub bytes: u64,
    /// CRC32C of the block (`None` for revision-2 containers, which
    /// store no checksums).
    pub crc: Option<u32>,
}

/// Per-sample index of a v2 container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleIndexEntry {
    /// Sample name.
    pub name: String,
    /// Chromosome blocks, in stored order.
    pub chroms: Vec<ChromIndexEntry>,
}

/// The container-level index of a v2 dataset: everything except the
/// region blocks themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V2Index {
    /// Dataset name as stored in the container.
    pub name: String,
    /// Region schema.
    pub schema: Schema,
    /// One entry per sample.
    pub samples: Vec<SampleIndexEntry>,
}

impl V2Index {
    /// Total regions across all samples and chromosomes.
    pub fn region_count(&self) -> u64 {
        self.samples.iter().flat_map(|s| s.chroms.iter()).map(|c| c.regions).sum()
    }
}

fn decode_sample_index(
    cur: &mut Cursor<'_>,
    version: u8,
) -> Result<(String, Metadata, Vec<ChromIndexEntry>), FormatError> {
    let sample_name = cur.string()?;
    let n_pairs = cur.len_prefixed("metadata")?;
    let mut metadata = Metadata::new();
    for _ in 0..n_pairs {
        let k = cur.string()?;
        let v = cur.string()?;
        metadata.insert(&k, v);
    }
    let n_chroms = cur.len_prefixed("chrom index")?;
    let mut chroms = Vec::with_capacity(n_chroms);
    for _ in 0..n_chroms {
        let chrom = cur.string()?;
        let regions = cur.varint()?;
        let bytes = cur.varint()?;
        let crc = if version >= VERSION {
            let raw = cur.bytes(4)?;
            Some(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
        } else {
            None
        };
        chroms.push(ChromIndexEntry { chrom, regions, bytes, crc });
    }
    Ok((sample_name, metadata, chroms))
}

/// Read only the index of a v2 container (schema, sample names,
/// metadata sizes, per-chromosome region counts and byte extents) —
/// no region block is decoded.
pub fn read_index(dir: &Path) -> Result<V2Index, FormatError> {
    let buf = fs::read(dir.join(CONTAINER_FILE))?;
    let mut cur = Cursor::new(&buf);
    let (name, schema, version) = decode_header(&mut cur)?;
    let n_samples = cur.len_prefixed("sample count")?;
    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let (sample_name, _meta, chroms) = decode_sample_index(&mut cur, version)?;
        let block_bytes = chroms
            .iter()
            .try_fold(0u64, |acc, c| acc.checked_add(c.bytes))
            .ok_or_else(|| cur.corrupt("block extents overflow u64"))?;
        let skip =
            usize::try_from(block_bytes).map_err(|_| cur.corrupt("block extent exceeds usize"))?;
        cur.skip(skip)?;
        samples.push(SampleIndexEntry { name: sample_name, chroms });
    }
    Ok(V2Index { name, schema, samples })
}

/// Map `opts.columns` onto schema positions (case-insensitive). Returns
/// `None` when every column is kept, so the hot path stays mask-free.
fn column_mask(schema: &Schema, opts: &ScanOptions) -> Option<Vec<bool>> {
    let wanted = opts.columns.as_ref()?;
    let lowered: BTreeSet<String> = wanted.iter().map(|c| c.to_ascii_lowercase()).collect();
    let mask: Vec<bool> = schema
        .attributes()
        .iter()
        .map(|a| lowered.contains(&a.name.to_ascii_lowercase()))
        .collect();
    if mask.iter().all(|&m| m) {
        None
    } else {
        Some(mask)
    }
}

/// One chromosome block scheduled for decoding: which sample it belongs
/// to and where it starts in the container buffer.
struct BlockJob {
    sample: usize,
    offset: usize,
    entry: ChromIndexEntry,
}

/// Shared decode core: walk the per-sample chromosome indexes once to
/// plan which blocks to decode, then decode them **in parallel** on the
/// shared [`WorkerPool`] — each block is independent (own offset, own
/// region count), so a fresh cursor per job needs no coordination.
/// Blocks excluded by `opts` are skipped via the offset index without
/// touching their bytes.
///
/// `verify_blocks` selects the integrity regime: pruned reads verify
/// each decoded block's CRC32C lazily (skipped blocks stay unchecked),
/// while full reads rely on the caller having verified the whole-file
/// trailer up front.
fn decode_dataset_v2_with(
    buf: &[u8],
    opts: &ScanOptions,
    verify_blocks: bool,
) -> Result<(Dataset, ScanStats), FormatError> {
    let mut cur = Cursor::new(buf);
    let (name, schema, version) = decode_header(&mut cur)?;
    let mask = column_mask(&schema, opts);
    let mut stats = ScanStats { container_bytes: buf.len() as u64, ..ScanStats::default() };
    let n_samples = cur.len_prefixed("sample count")?;
    let mut metas: Vec<(String, Metadata)> = Vec::with_capacity(n_samples);
    let mut jobs: Vec<BlockJob> = Vec::new();
    for si in 0..n_samples {
        let (sample_name, metadata, chroms) = decode_sample_index(&mut cur, version)?;
        for entry in chroms {
            let skip = usize::try_from(entry.bytes)
                .map_err(|_| cur.corrupt("block extent exceeds usize"))?;
            if opts.wants_chrom(&entry.chrom) {
                stats.blocks_read += 1;
                stats.bytes_read += entry.bytes;
                jobs.push(BlockJob { sample: si, offset: cur.pos, entry });
            } else {
                stats.blocks_skipped += 1;
                stats.bytes_skipped += entry.bytes;
            }
            cur.skip(skip)?;
        }
        metas.push((sample_name, metadata));
    }
    let keep = mask.as_deref();
    let decoded: Vec<(usize, Vec<GRegion>)> = decode_pool().try_parallel_map(jobs, |job| {
        let mut cur = Cursor { buf, pos: job.offset };
        if verify_blocks {
            verify_block(&cur, &metas[job.sample].0, &job.entry)?;
        }
        let n = usize::try_from(job.entry.regions)
            .map_err(|_| cur.corrupt("region count exceeds usize"))?;
        let mut regions = Vec::new();
        decode_chrom_block_cols(&mut cur, &job.entry.chrom, n, &schema, keep, &mut regions)?;
        let consumed = (cur.pos - job.offset) as u64;
        if consumed != job.entry.bytes {
            return Err(cur.corrupt(format!(
                "chrom block for {:?} decoded {consumed} bytes, index says {}",
                job.entry.chrom, job.entry.bytes
            )));
        }
        Ok((job.sample, regions))
    })?;
    // try_parallel_map preserves input order, which is index order, so
    // extending per sample reproduces the serial decode's region order.
    let mut per_sample: Vec<Vec<GRegion>> = (0..n_samples).map(|_| Vec::new()).collect();
    for (si, regions) in decoded {
        per_sample[si].extend(regions);
    }
    let mut dataset = Dataset::new(name.clone(), schema);
    for ((sample_name, metadata), regions) in metas.into_iter().zip(per_sample) {
        let sample = Sample::new(sample_name, &name).with_regions(regions).with_metadata(metadata);
        dataset.add_sample(sample)?;
    }
    Ok((dataset, stats))
}

/// Decode a full v2 container from bytes. For revision-3 containers
/// the whole-file trailer is verified up front: any flipped bit in the
/// buffer — header, index or block — surfaces as
/// [`FormatError::ChecksumMismatch`] before a single region decodes.
/// Chromosome blocks then decode in parallel on the shared worker pool.
pub fn decode_dataset_v2(buf: &[u8]) -> Result<Dataset, FormatError> {
    let mut cur = Cursor::new(buf);
    let version = decode_version(&mut cur)?;
    if version >= VERSION {
        verify_trailer(buf)?;
    }
    decode_dataset_v2_with(buf, &ScanOptions::default(), false).map(|(ds, _)| ds)
}

/// Read a whole dataset from a v2 container directory.
pub fn read_dataset_v2(dir: &Path) -> Result<Dataset, FormatError> {
    let buf = fs::read(dir.join(CONTAINER_FILE))?;
    decode_dataset_v2(&buf)
}

/// Decode a v2 container restricted by [`ScanOptions`]: only wanted
/// chromosome blocks are decoded (in parallel), unwanted value columns
/// are skipped and null-filled, and every sample is kept — possibly
/// with empty regions — so metadata stays addressable. Verification is
/// lazy per decoded block; skipped blocks are never checksummed.
pub fn decode_dataset_v2_pruned(
    buf: &[u8],
    opts: &ScanOptions,
) -> Result<(Dataset, ScanStats), FormatError> {
    decode_dataset_v2_with(buf, opts, true)
}

/// Read a dataset from a v2 container directory, pruned by
/// [`ScanOptions`]. See [`decode_dataset_v2_pruned`].
pub fn read_dataset_v2_pruned(
    dir: &Path,
    opts: &ScanOptions,
) -> Result<(Dataset, ScanStats), FormatError> {
    let buf = fs::read(dir.join(CONTAINER_FILE))?;
    decode_dataset_v2_pruned(&buf, opts)
}

/// Read a dataset restricted to one chromosome: only that chromosome's
/// blocks are decoded, every other block is skipped via the offset
/// index. Samples without the chromosome are kept with empty regions so
/// metadata stays addressable.
pub fn read_dataset_v2_chrom(dir: &Path, chrom: &str) -> Result<Dataset, FormatError> {
    let opts =
        ScanOptions { chroms: Some(std::iter::once(chrom.to_owned()).collect()), columns: None };
    read_dataset_v2_pruned(dir, &opts).map(|(ds, _)| ds)
}

/// Stream a v2 dataset sample by sample, mirroring
/// [`crate::native::read_dataset_streaming`]. The callback may return
/// `false` to stop early; remaining samples are not decoded.
pub fn read_dataset_v2_streaming(
    dir: &Path,
    mut visit: impl FnMut(Sample) -> bool,
) -> Result<Schema, FormatError> {
    let buf = fs::read(dir.join(CONTAINER_FILE))?;
    let mut cur = Cursor::new(&buf);
    let (name, schema, version) = decode_header(&mut cur)?;
    let n_samples = cur.len_prefixed("sample count")?;
    for _ in 0..n_samples {
        let (sample_name, metadata, chroms) = decode_sample_index(&mut cur, version)?;
        let mut regions = Vec::new();
        for entry in &chroms {
            let n = usize::try_from(entry.regions)
                .map_err(|_| cur.corrupt("region count exceeds usize"))?;
            verify_block(&cur, &sample_name, entry)?;
            decode_chrom_block(&mut cur, &entry.chrom, n, &schema, &mut regions)?;
        }
        let sample = Sample::new(sample_name, &name).with_regions(regions).with_metadata(metadata);
        if !visit(sample) {
            break;
        }
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::Attribute;

    fn wide_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("score", ValueType::Float),
            Attribute::new("name", ValueType::Str),
            Attribute::new("count", ValueType::Int),
            Attribute::new("flagged", ValueType::Bool),
        ])
        .unwrap()
    }

    fn wide_dataset() -> Dataset {
        let mut ds = Dataset::new("WIDE", wide_schema());
        ds.add_sample(
            Sample::new("s1", "WIDE")
                .with_regions(vec![
                    GRegion::new("chr1", 100, 200, Strand::Pos).with_values(vec![
                        Value::Float(0.5),
                        Value::Str("peak_a".into()),
                        Value::Int(-3),
                        Value::Bool(true),
                    ]),
                    GRegion::new("chr1", 150, 150, Strand::Neg).with_values(vec![
                        Value::Null,
                        Value::Null,
                        Value::Int(7),
                        Value::Bool(false),
                    ]),
                    GRegion::new("chr2", 0, 50, Strand::Unstranded).with_values(vec![
                        Value::Float(f64::NAN),
                        Value::Str("".into()),
                        Value::Null,
                        Value::Null,
                    ]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "K562"), ("assay", "ChIP-seq")])),
        )
        .unwrap();
        ds.add_sample(
            Sample::new("s2", "WIDE").with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds
    }

    fn assert_datasets_equal(a: &Dataset, b: &Dataset) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.sample_count(), b.sample_count());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.metadata, sb.metadata);
            assert_eq!(sa.regions.len(), sb.regions.len());
            for (ra, rb) in sa.regions.iter().zip(&sb.regions) {
                assert_eq!(
                    (ra.chrom.as_str(), ra.left, ra.right, ra.strand),
                    (rb.chrom.as_str(), rb.left, rb.right, rb.strand)
                );
                assert_eq!(ra.values.len(), rb.values.len());
                for (va, vb) in ra.values.iter().zip(&rb.values) {
                    match (va, vb) {
                        (Value::Float(x), Value::Float(y)) => {
                            assert_eq!(x.to_bits(), y.to_bits(), "float bits must round-trip")
                        }
                        _ => assert_eq!(va, vb),
                    }
                }
            }
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_v2_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn memory_roundtrip_all_types_nulls_nan_zero_length() {
        let ds = wide_dataset();
        let bytes = encode_dataset_v2(&ds).unwrap();
        assert_eq!(&bytes[..8], MAGIC);
        let back = decode_dataset_v2(&bytes).unwrap();
        assert_datasets_equal(&ds, &back);
    }

    #[test]
    fn disk_roundtrip_and_detection() {
        let ds = wide_dataset();
        let dir = tmp("disk");
        let dsdir = dir.join("WIDE");
        let written = write_dataset_v2(&ds, &dsdir).unwrap();
        assert!(written > 0);
        assert_eq!(detect_version(&dsdir), Some(StorageVersion::V2));
        let back = read_dataset_v2(&dsdir).unwrap();
        assert_datasets_equal(&ds, &back);
        // Auto reader picks v2.
        let auto = read_dataset_auto(&dsdir).unwrap();
        assert_datasets_equal(&ds, &auto);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_directories_detected_and_auto_read() {
        let ds = wide_dataset();
        let dir = tmp("v1auto");
        let dsdir = dir.join("WIDE");
        native::write_dataset(&ds, &dsdir).unwrap();
        assert_eq!(detect_version(&dsdir), Some(StorageVersion::V1));
        let back = read_dataset_auto(&dsdir).unwrap();
        assert_eq!(back.sample_count(), ds.sample_count());
        assert_eq!(detect_version(&dir), None, "parent dir is no dataset");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chromosome_granular_read() {
        let ds = wide_dataset();
        let dir = tmp("chrom");
        let dsdir = dir.join("WIDE");
        write_dataset_v2(&ds, &dsdir).unwrap();
        let chr2 = read_dataset_v2_chrom(&dsdir, "chr2").unwrap();
        assert_eq!(chr2.sample_count(), 2, "samples survive even without the chromosome");
        assert_eq!(chr2.samples[0].region_count(), 1);
        assert_eq!(chr2.samples[0].regions[0].chrom.as_str(), "chr2");
        assert_eq!(chr2.samples[1].region_count(), 0);
        assert!(chr2.samples[1].metadata.has("cell", "HeLa"));
        let none = read_dataset_v2_chrom(&dsdir, "chr9").unwrap();
        assert_eq!(none.region_count(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_reads_without_decoding_blocks() {
        let ds = wide_dataset();
        let dir = tmp("index");
        let dsdir = dir.join("WIDE");
        write_dataset_v2(&ds, &dsdir).unwrap();
        let index = read_index(&dsdir).unwrap();
        assert_eq!(index.name, "WIDE");
        assert_eq!(index.schema, ds.schema);
        assert_eq!(index.samples.len(), 2);
        assert_eq!(index.samples[0].chroms.len(), 2);
        assert_eq!(index.samples[0].chroms[0].chrom, "chr1");
        assert_eq!(index.samples[0].chroms[0].regions, 2);
        assert_eq!(index.region_count(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_visits_and_stops_early() {
        let ds = wide_dataset();
        let dir = tmp("stream");
        let dsdir = dir.join("WIDE");
        write_dataset_v2(&ds, &dsdir).unwrap();
        let mut seen = Vec::new();
        let schema = read_dataset_v2_streaming(&dsdir, |s| {
            seen.push((s.name.clone(), s.region_count()));
            true
        })
        .unwrap();
        assert_eq!(schema, ds.schema);
        assert_eq!(seen, vec![("s1".into(), 3), ("s2".into(), 0)]);
        let mut count = 0;
        read_dataset_v2_streaming(&dsdir, |_| {
            count += 1;
            false
        })
        .unwrap();
        assert_eq!(count, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_containers_rejected() {
        let ds = wide_dataset();
        let mut bytes = encode_dataset_v2(&ds).unwrap();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_dataset_v2(&bad), Err(FormatError::Corrupt { .. })));
        // Bad version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(decode_dataset_v2(&bad), Err(FormatError::Corrupt { .. })));
        // Truncation anywhere must error, never panic.
        bytes.truncate(bytes.len() / 2);
        assert!(decode_dataset_v2(&bytes).is_err());
        assert!(decode_dataset_v2(&[]).is_err());
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut cur = Cursor::new(&buf);
            assert_eq!(unzigzag(cur.varint().unwrap()), v);
        }
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn legacy_v2_containers_still_load() {
        let ds = wide_dataset();
        let legacy = encode_dataset_v2_legacy(&ds).unwrap();
        assert_eq!(legacy[8], VERSION_LEGACY);
        let back = decode_dataset_v2(&legacy).unwrap();
        assert_datasets_equal(&ds, &back);
        // Disk paths (full, chrom-granular, index-only) accept it too.
        let dir = tmp("legacy");
        let dsdir = dir.join("WIDE");
        fs::create_dir_all(&dsdir).unwrap();
        fs::write(dsdir.join(CONTAINER_FILE), &legacy).unwrap();
        assert_eq!(detect_version(&dsdir), Some(StorageVersion::V2));
        assert_datasets_equal(&ds, &read_dataset_v2(&dsdir).unwrap());
        assert_eq!(read_dataset_v2_chrom(&dsdir, "chr2").unwrap().region_count(), 1);
        let index = read_index(&dsdir).unwrap();
        assert!(index.samples[0].chroms.iter().all(|c| c.crc.is_none()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_revision_carries_checksums() {
        let ds = wide_dataset();
        let bytes = encode_dataset_v2(&ds).unwrap();
        assert_eq!(bytes[8], VERSION);
        let dir = tmp("v3index");
        let dsdir = dir.join("WIDE");
        fs::create_dir_all(&dsdir).unwrap();
        fs::write(dsdir.join(CONTAINER_FILE), &bytes).unwrap();
        let index = read_index(&dsdir).unwrap();
        assert!(index.samples[0].chroms.iter().all(|c| c.crc.is_some()));
        // Trailer is the CRC of everything before it.
        let body = &bytes[..bytes.len() - 4];
        let trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        assert_eq!(trailer, crc32c(body));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_fails_only_the_flipped_section() {
        let ds = wide_dataset();
        let bytes = encode_dataset_v2(&ds).unwrap();
        let dir = tmp("flip");
        let dsdir = dir.join("WIDE");
        fs::create_dir_all(&dsdir).unwrap();
        // Blocks sit back-to-back just before the 4-byte trailer; the
        // chr2 block is the last one, so flip a bit inside its extent.
        let index = {
            fs::write(dsdir.join(CONTAINER_FILE), &bytes).unwrap();
            read_index(&dsdir).unwrap()
        };
        let chr2_bytes = index.samples[0].chroms[1].bytes as usize;
        assert_eq!(index.samples[0].chroms[1].chrom, "chr2");
        let mut flipped = bytes.clone();
        let pos = flipped.len() - 4 - chr2_bytes;
        flipped[pos] ^= 0x10;
        fs::write(dsdir.join(CONTAINER_FILE), &flipped).unwrap();
        // The damaged section fails with a typed checksum error...
        match read_dataset_v2_chrom(&dsdir, "chr2") {
            Err(FormatError::ChecksumMismatch { section, expected, got }) => {
                assert_eq!(section, "s1/chr2");
                assert_ne!(expected, got);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // ...while every other section of the same container stays
        // readable (lazy per-section verification).
        let chr1 = read_dataset_v2_chrom(&dsdir, "chr1").unwrap();
        assert_eq!(chr1.samples[0].region_count(), 2);
        assert!(read_index(&dsdir).is_ok());
        // A full read checks the whole-file trailer up front.
        match read_dataset_v2(&dsdir) {
            Err(FormatError::ChecksumMismatch { section, .. }) => assert_eq!(section, "file"),
            other => panic!("expected trailer mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_bit_flip_is_rejected_by_full_decode() {
        let ds = wide_dataset();
        let bytes = encode_dataset_v2(&ds).unwrap();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                let res = decode_dataset_v2(&flipped);
                if i == 8 && bit == 0 {
                    // Residual risk documented in docs/storage.md: this
                    // one flip downgrades the version byte 3 -> 2, and a
                    // revision-2 reader checks no checksums. Structural
                    // decoding still has to not panic.
                    let _ = res;
                    continue;
                }
                assert!(res.is_err(), "flip at byte {i} bit {bit} decoded silently");
                // Past magic + version, the trailer guarantees the error
                // is the typed checksum mismatch, not structural luck.
                if i >= 9 {
                    assert!(
                        matches!(res, Err(FormatError::ChecksumMismatch { .. })),
                        "flip at byte {i} bit {bit} gave {res:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_read_restricts_chroms_and_reports_stats() {
        let dir = tmp("pruned_chroms");
        write_dataset_v2(&wide_dataset(), &dir).unwrap();
        let opts = ScanOptions {
            chroms: Some(std::iter::once("chr2".to_string()).collect()),
            columns: None,
        };
        let (ds, stats) = read_dataset_v2_pruned(&dir, &opts).unwrap();
        // Both samples survive; only chr2 regions decode.
        assert_eq!(ds.sample_count(), 2);
        assert_eq!(ds.samples[0].regions.len(), 1);
        assert_eq!(ds.samples[0].regions[0].chrom.as_str(), "chr2");
        assert!(ds.samples[1].regions.is_empty());
        // s1 has chr1 + chr2 blocks: one read, one skipped.
        assert_eq!(stats.blocks_read, 1);
        assert_eq!(stats.blocks_skipped, 1);
        assert!(stats.bytes_read > 0);
        assert!(stats.bytes_skipped > 0);
        assert!(stats.container_bytes > stats.bytes_read);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_read_null_fills_masked_columns() {
        let dir = tmp("pruned_cols");
        write_dataset_v2(&wide_dataset(), &dir).unwrap();
        // Keep only `count`; match case-insensitively.
        let opts = ScanOptions {
            chroms: None,
            columns: Some(std::iter::once("COUNT".to_string()).collect()),
        };
        let (ds, stats) = read_dataset_v2_pruned(&dir, &opts).unwrap();
        assert_eq!(stats.blocks_skipped, 0, "column pruning alone skips no blocks");
        let full = read_dataset_v2(&dir).unwrap();
        assert_eq!(ds.samples[0].regions.len(), full.samples[0].regions.len());
        for (r, rf) in ds.samples[0].regions.iter().zip(&full.samples[0].regions) {
            assert_eq!((r.left, r.right, r.strand), (rf.left, rf.right, rf.strand));
            assert_eq!(r.values.len(), 4, "value arity must match the schema");
            assert_eq!(r.values[2], rf.values[2], "kept column decodes normally");
            for &i in &[0usize, 1, 3] {
                assert_eq!(r.values[i], Value::Null, "masked column is null-filled");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_read_with_full_options_equals_full_read() {
        let dir = tmp("pruned_full");
        write_dataset_v2(&wide_dataset(), &dir).unwrap();
        let (ds, stats) = read_dataset_v2_pruned(&dir, &ScanOptions::default()).unwrap();
        assert_datasets_equal(&ds, &read_dataset_v2(&dir).unwrap());
        assert_eq!(stats.blocks_skipped, 0);
        assert_eq!(stats.bytes_skipped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_is_smaller_than_text_for_numeric_data() {
        // A numeric-heavy sample: the shape ENCODE peak files have.
        let schema = Schema::new(vec![
            Attribute::new("signal", ValueType::Float),
            Attribute::new("p_value", ValueType::Float),
        ])
        .unwrap();
        let mut ds = Dataset::new("NUM", schema);
        let regions: Vec<GRegion> = (0..2000)
            .map(|i| {
                GRegion::new("chr1", i * 137, i * 137 + 400, Strand::Pos)
                    .with_values(vec![Value::Float(i as f64 * 0.25), Value::Float(1e-9)])
            })
            .collect();
        ds.add_sample(Sample::new("s", "NUM").with_regions(regions)).unwrap();
        let v2 = encode_dataset_v2(&ds).unwrap().len();
        let v1 = native::render_regions(&ds.samples[0].regions).len();
        assert!(v2 < v1, "v2 container ({v2} B) should undercut v1 text regions alone ({v1} B)");
    }
}
