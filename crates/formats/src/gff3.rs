//! GFF3 (Generic Feature Format v3) — the successor of GTF.
//!
//! Same nine-column layout as GTF but with `key=value` attribute pairs
//! and a formal `ID`/`Parent` hierarchy. Coordinates are 1-based
//! inclusive and convert to 0-based half-open.

use crate::error::FormatError;
use nggc_gdm::{Attribute, GRegion, Schema, Strand, Value, ValueType};

/// The GDM schema for GFF3 rows.
pub fn gff3_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("source", ValueType::Str),
        Attribute::new("type", ValueType::Str),
        Attribute::new("score", ValueType::Float),
        Attribute::new("phase", ValueType::Str),
        Attribute::new("id", ValueType::Str),
        Attribute::new("name", ValueType::Str),
        Attribute::new("parent", ValueType::Str),
    ])
    .expect("GFF3 schema attributes are valid")
}

/// Parse GFF3 text into regions under [`gff3_schema`]. Directives (`##`)
/// and comments are skipped; the `###` resolution directive and FASTA
/// section terminate region parsing per the spec.
pub fn parse_gff3(text: &str) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line == "##FASTA" {
            break;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 9 {
            return Err(FormatError::malformed(
                lineno,
                format!("expected 9 fields, found {}", fields.len()),
            ));
        }
        let start: u64 = fields[3]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad start {:?}", fields[3])))?;
        let end: u64 = fields[4]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad end {:?}", fields[4])))?;
        if start == 0 || end < start {
            return Err(FormatError::malformed(lineno, "invalid 1-based coordinates"));
        }
        let strand = Strand::parse(fields[6])
            .or(if fields[6] == "?" { Some(Strand::Unstranded) } else { None })
            .ok_or_else(|| FormatError::malformed(lineno, format!("bad strand {:?}", fields[6])))?;
        let score = Value::parse_as(fields[5], ValueType::Float)
            .map_err(|e| FormatError::malformed(lineno, e.to_string()))?;
        let attrs = parse_gff3_attributes(fields[8]);
        let get = |key: &str| -> Value {
            attrs
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(key))
                .map(|(_, v)| Value::Str(v.clone()))
                .unwrap_or(Value::Null)
        };
        let values = vec![
            Value::Str(fields[1].to_owned()),
            Value::Str(fields[2].to_owned()),
            score,
            Value::parse_as(fields[7], ValueType::Str).unwrap_or(Value::Null),
            get("ID"),
            get("Name"),
            get("Parent"),
        ];
        out.push(GRegion::new(fields[0], start - 1, end, strand).with_values(values));
    }
    Ok(out)
}

/// Split a GFF3 attribute column into `(key, value)` pairs, decoding the
/// three percent-escapes the spec requires in values.
fn parse_gff3_attributes(blob: &str) -> Vec<(String, String)> {
    blob.split(';')
        .filter_map(|part| {
            let part = part.trim();
            let (k, v) = part.split_once('=')?;
            let v =
                v.replace("%3B", ";").replace("%3D", "=").replace("%26", "&").replace("%2C", ",");
            Some((k.to_owned(), v))
        })
        .collect()
}

/// Serialise regions (under [`gff3_schema`]) to GFF3 text.
pub fn write_gff3(regions: &[GRegion]) -> String {
    let mut out = String::from("##gff-version 3\n");
    for r in regions {
        let v = |i: usize| r.values.get(i).cloned().unwrap_or(Value::Null);
        let mut attrs = Vec::new();
        for (key, idx) in [("ID", 4), ("Name", 5), ("Parent", 6)] {
            if let Value::Str(s) = v(idx) {
                attrs.push(format!("{key}={}", s.replace(';', "%3B").replace('=', "%3D")));
            }
        }
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.chrom,
            v(0).render(),
            v(1).render(),
            r.left + 1,
            r.right,
            v(2).render(),
            r.strand.symbol(),
            v(3).render(),
            if attrs.is_empty() { ".".to_owned() } else { attrs.join(";") },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GFF: &str = "##gff-version 3\nchr1\thavana\tgene\t11869\t14409\t.\t+\t.\tID=gene:ENSG1;Name=DDX11L1\nchr1\thavana\tmRNA\t11869\t14409\t.\t+\t.\tID=tx:ENST1;Parent=gene:ENSG1\n";

    #[test]
    fn parses_hierarchy_attributes() {
        let rs = parse_gff3(GFF).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].values[4], Value::Str("gene:ENSG1".into()));
        assert_eq!(rs[0].values[5], Value::Str("DDX11L1".into()));
        assert_eq!(rs[1].values[6], Value::Str("gene:ENSG1".into()));
        assert_eq!(rs[0].left, 11868, "1-based converts to half-open");
    }

    #[test]
    fn percent_escapes_decoded() {
        let text = "chr1\ts\tt\t1\t5\t.\t+\t.\tID=a;Name=x%3By%3Dz\n";
        let rs = parse_gff3(text).unwrap();
        assert_eq!(rs[0].values[5], Value::Str("x;y=z".into()));
    }

    #[test]
    fn fasta_section_terminates() {
        let text = "chr1\ts\tt\t1\t5\t.\t+\t.\tID=a\n##FASTA\n>chr1\nACGT\n";
        let rs = parse_gff3(text).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn question_mark_strand_is_unstranded() {
        let text = "chr1\ts\tt\t1\t5\t.\t?\t.\tID=a\n";
        let rs = parse_gff3(text).unwrap();
        assert_eq!(rs[0].strand, Strand::Unstranded);
    }

    #[test]
    fn roundtrip() {
        let rs = parse_gff3(GFF).unwrap();
        let rs2 = parse_gff3(&write_gff3(&rs)).unwrap();
        assert_eq!(rs, rs2);
    }

    #[test]
    fn schema_check() {
        let rs = parse_gff3(GFF).unwrap();
        for r in &rs {
            gff3_schema().check_row(&r.values).unwrap();
        }
    }
}
