//! File-format detection and the uniform loader.
//!
//! GDM "mediates all existing data formats" (paper §2); this module maps a
//! file extension to a parser and its induced schema so that heterogeneous
//! files load into datasets with one call.

use crate::bed::{parse_bed, BedOptions};
use crate::bedgraph::{bedgraph_schema, parse_bedgraph};
use crate::error::FormatError;
use crate::gff3::{gff3_schema, parse_gff3};
use crate::gtf::{gtf_schema, parse_gtf};
use crate::peak::{parse_peaks, PeakKind};
use crate::vcf::{parse_vcf, vcf_schema};
use crate::wig::{parse_wig, wig_schema};
use nggc_gdm::{GRegion, Schema};
use std::path::Path;

/// A recognised external genomic file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFormat {
    /// BED (6 standard columns assumed when present).
    Bed,
    /// ENCODE narrowPeak.
    NarrowPeak,
    /// ENCODE broadPeak.
    BroadPeak,
    /// GTF annotation.
    Gtf,
    /// GFF3 annotation.
    Gff3,
    /// VCF variant calls.
    Vcf,
    /// bedGraph signal.
    BedGraph,
    /// WIG signal track.
    Wig,
}

impl FileFormat {
    /// Detect from a file extension (`.bed`, `.narrowPeak`, `.broadPeak`,
    /// `.gtf`, `.vcf`, `.bedgraph`/`.bdg`).
    pub fn from_path(path: &Path) -> Result<FileFormat, FormatError> {
        let ext =
            path.extension().map(|e| e.to_string_lossy().to_ascii_lowercase()).unwrap_or_default();
        match ext.as_str() {
            "bed" => Ok(FileFormat::Bed),
            "narrowpeak" => Ok(FileFormat::NarrowPeak),
            "broadpeak" => Ok(FileFormat::BroadPeak),
            "gtf" => Ok(FileFormat::Gtf),
            "gff3" | "gff" => Ok(FileFormat::Gff3),
            "vcf" => Ok(FileFormat::Vcf),
            "bedgraph" | "bdg" => Ok(FileFormat::BedGraph),
            "wig" => Ok(FileFormat::Wig),
            other => Err(FormatError::UnknownFormat(format!("extension {other:?}"))),
        }
    }

    /// The GDM region schema this format induces.
    pub fn schema(self) -> Schema {
        match self {
            FileFormat::Bed => BedOptions::bed6().schema(),
            FileFormat::NarrowPeak => PeakKind::Narrow.schema(),
            FileFormat::BroadPeak => PeakKind::Broad.schema(),
            FileFormat::Gtf => gtf_schema(),
            FileFormat::Gff3 => gff3_schema(),
            FileFormat::Vcf => vcf_schema(),
            FileFormat::BedGraph => bedgraph_schema(),
            FileFormat::Wig => wig_schema(),
        }
    }

    /// Parse file text into regions under [`FileFormat::schema`].
    pub fn parse(self, text: &str) -> Result<Vec<GRegion>, FormatError> {
        match self {
            FileFormat::Bed => parse_bed(text, &BedOptions::bed6()),
            FileFormat::NarrowPeak => parse_peaks(text, PeakKind::Narrow),
            FileFormat::BroadPeak => parse_peaks(text, PeakKind::Broad),
            FileFormat::Gtf => parse_gtf(text),
            FileFormat::Gff3 => parse_gff3(text),
            FileFormat::Vcf => parse_vcf(text),
            FileFormat::BedGraph => parse_bedgraph(text),
            FileFormat::Wig => parse_wig(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_by_extension() {
        assert_eq!(FileFormat::from_path(Path::new("x/a.bed")).unwrap(), FileFormat::Bed);
        assert_eq!(
            FileFormat::from_path(Path::new("a.narrowPeak")).unwrap(),
            FileFormat::NarrowPeak
        );
        assert_eq!(FileFormat::from_path(Path::new("a.bdg")).unwrap(), FileFormat::BedGraph);
        assert!(FileFormat::from_path(Path::new("a.xyz")).is_err());
        assert!(FileFormat::from_path(Path::new("noext")).is_err());
    }

    #[test]
    fn parse_dispatch_matches_schema_arity() {
        for fmt in [
            FileFormat::Bed,
            FileFormat::NarrowPeak,
            FileFormat::BroadPeak,
            FileFormat::Gtf,
            FileFormat::Gff3,
            FileFormat::Vcf,
            FileFormat::BedGraph,
            FileFormat::Wig,
        ] {
            let schema = fmt.schema();
            assert!(!schema.attributes().is_empty() || fmt == FileFormat::Bed);
            let text = match fmt {
                FileFormat::Bed => "chr1\t0\t5\tn\t1\t+\n",
                FileFormat::NarrowPeak => "chr1\t0\t5\tn\t1\t+\t2\t3\t4\t2\n",
                FileFormat::BroadPeak => "chr1\t0\t5\tn\t1\t+\t2\t3\t4\n",
                FileFormat::Gtf => "chr1\ts\tgene\t1\t5\t.\t+\t.\tgene_id \"g\";\n",
                FileFormat::Gff3 => "chr1\ts\tgene\t1\t5\t.\t+\t.\tID=g\n",
                FileFormat::Vcf => "chr1\t1\t.\tA\tC\t.\tPASS\t.\n",
                FileFormat::BedGraph => "chr1\t0\t5\t1.5\n",
                FileFormat::Wig => "fixedStep chrom=chr1 start=1 step=5 span=5\n1.5\n",
            };
            let rs = fmt.parse(text).unwrap();
            assert_eq!(rs.len(), 1);
            assert_eq!(rs[0].values.len(), schema.len(), "{fmt:?} arity");
            schema.check_row(&rs[0].values).unwrap();
        }
    }
}
