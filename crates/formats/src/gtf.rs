//! GTF (Gene Transfer Format) — gene/transcript annotations.
//!
//! GDM treats annotations (genes, promoters, enhancers) as just another
//! region dataset (paper §2 loads reference regions "from the UCSC
//! database"). GTF columns:
//! `seqname source feature start end score strand frame attributes`.
//!
//! GTF coordinates are **1-based inclusive**; the GDM mapping converts to
//! 0-based half-open (`left = start-1`, `right = end`).

use crate::error::FormatError;
use nggc_gdm::{Attribute, GRegion, Schema, Strand, Value, ValueType};

/// The GDM schema for GTF rows: `source`, `feature`, `score`, `frame`,
/// plus the two near-universal attributes `gene_id` and `transcript_id`.
pub fn gtf_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("source", ValueType::Str),
        Attribute::new("feature", ValueType::Str),
        Attribute::new("score", ValueType::Float),
        Attribute::new("frame", ValueType::Str),
        Attribute::new("gene_id", ValueType::Str),
        Attribute::new("transcript_id", ValueType::Str),
    ])
    .expect("GTF schema attributes are valid")
}

/// Parse GTF text into regions under [`gtf_schema`].
pub fn parse_gtf(text: &str) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 9 {
            return Err(FormatError::malformed(
                lineno,
                format!("expected 9 fields, found {}", fields.len()),
            ));
        }
        let start: u64 = fields[3]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad start {:?}", fields[3])))?;
        let end: u64 = fields[4]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad end {:?}", fields[4])))?;
        if start == 0 {
            return Err(FormatError::malformed(
                lineno,
                "GTF coordinates are 1-based; start 0 is invalid",
            ));
        }
        if end < start {
            return Err(FormatError::malformed(lineno, format!("end {end} < start {start}")));
        }
        let strand = Strand::parse(fields[6])
            .ok_or_else(|| FormatError::malformed(lineno, format!("bad strand {:?}", fields[6])))?;
        let score = Value::parse_as(fields[5], ValueType::Float)
            .map_err(|e| FormatError::malformed(lineno, e.to_string()))?;
        let (gene_id, transcript_id) = parse_gtf_attributes(fields[8]);
        let values = vec![
            Value::Str(fields[1].to_owned()),
            Value::Str(fields[2].to_owned()),
            score,
            Value::Str(fields[7].to_owned()),
            gene_id.map(Value::Str).unwrap_or(Value::Null),
            transcript_id.map(Value::Str).unwrap_or(Value::Null),
        ];
        out.push(GRegion::new(fields[0], start - 1, end, strand).with_values(values));
    }
    Ok(out)
}

/// Extract `gene_id` and `transcript_id` from a GTF attribute blob like
/// `gene_id "TP53"; transcript_id "TP53-201";`.
fn parse_gtf_attributes(blob: &str) -> (Option<String>, Option<String>) {
    let mut gene = None;
    let mut transcript = None;
    for part in blob.split(';') {
        let part = part.trim();
        if let Some(rest) = part.strip_prefix("gene_id") {
            gene = Some(rest.trim().trim_matches('"').to_owned());
        } else if let Some(rest) = part.strip_prefix("transcript_id") {
            transcript = Some(rest.trim().trim_matches('"').to_owned());
        }
    }
    (gene.filter(|s| !s.is_empty()), transcript.filter(|s| !s.is_empty()))
}

/// Serialise regions (under [`gtf_schema`]) back to GTF text.
pub fn write_gtf(regions: &[GRegion]) -> String {
    let mut out = String::new();
    for r in regions {
        let v = |i: usize| r.values.get(i).cloned().unwrap_or(Value::Null);
        let mut attrs = String::new();
        if let Value::Str(g) = v(4) {
            attrs.push_str(&format!("gene_id \"{g}\"; "));
        }
        if let Value::Str(t) = v(5) {
            attrs.push_str(&format!("transcript_id \"{t}\"; "));
        }
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.chrom,
            v(0).render(),
            v(1).render(),
            r.left + 1,
            r.right,
            v(2).render(),
            r.strand.symbol(),
            v(3).render(),
            attrs.trim_end(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GTF: &str = "chr1\thavana\tgene\t11869\t14409\t.\t+\t.\tgene_id \"DDX11L1\"; transcript_id \"DDX11L1-202\";\n";

    #[test]
    fn coordinates_convert_to_half_open() {
        let rs = parse_gtf(GTF).unwrap();
        assert_eq!(rs[0].left, 11868);
        assert_eq!(rs[0].right, 14409);
        assert_eq!(rs[0].strand, Strand::Pos);
    }

    #[test]
    fn attributes_extracted() {
        let rs = parse_gtf(GTF).unwrap();
        assert_eq!(rs[0].values[4], Value::Str("DDX11L1".into()));
        assert_eq!(rs[0].values[5], Value::Str("DDX11L1-202".into()));
        assert_eq!(rs[0].values[1], Value::Str("gene".into()));
        assert_eq!(rs[0].values[2], Value::Null, "dot score is null");
    }

    #[test]
    fn missing_attributes_null() {
        let text = "chr1\tsrc\texon\t10\t20\t1.5\t-\t0\tother_key \"x\";\n";
        let rs = parse_gtf(text).unwrap();
        assert_eq!(rs[0].values[4], Value::Null);
        assert_eq!(rs[0].values[2], Value::Float(1.5));
    }

    #[test]
    fn rejects_zero_start() {
        assert!(parse_gtf("chr1\ts\tf\t0\t10\t.\t+\t.\tx\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let rs = parse_gtf(GTF).unwrap();
        let rs2 = parse_gtf(&write_gtf(&rs)).unwrap();
        assert_eq!(rs, rs2);
    }

    #[test]
    fn comment_lines_skipped() {
        let rs = parse_gtf("#!genome-build GRCh38\n").unwrap();
        assert!(rs.is_empty());
    }
}
