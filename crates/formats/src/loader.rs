//! Directory loading: mixed genomic files → GDM datasets.
//!
//! Real repositories are directories of heterogeneous files; GDM's
//! promise is that they all load into one model. [`load_directory`]
//! groups a directory's recognised files by format, makes one dataset per
//! format (samples share a schema — the GDM constraint), attaches any
//! sidecar `.meta` files, and reports what it skipped.

use crate::detect::FileFormat;
use crate::error::FormatError;
use crate::native::parse_metadata;
use nggc_gdm::{Dataset, Sample};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Result of a directory load.
///
/// A malformed file never aborts the import: it lands in `failed` and
/// the remaining files still load. Every input file ends up in exactly
/// one of `loaded`, `skipped`, or `failed`.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// One dataset per encountered format, named `<DIR>_<FORMAT>`.
    pub datasets: Vec<Dataset>,
    /// Files parsed successfully, with the number of regions each contributed.
    pub loaded: Vec<(PathBuf, usize)>,
    /// Files skipped because their extension is not recognised.
    pub skipped: Vec<PathBuf>,
    /// Files that failed to read or parse, with the error text.
    pub failed: Vec<(PathBuf, String)>,
}

/// Load every recognised genomic file under `dir` (non-recursive).
/// A sidecar `<file>.meta` (attribute<TAB>value lines) attaches metadata
/// to the sample; `imported_from` and `format` are always recorded.
pub fn load_directory(dir: &Path) -> Result<LoadReport, FormatError> {
    type Pending = (FileFormat, Vec<(PathBuf, String)>);
    let mut by_format: BTreeMap<&'static str, Pending> = BTreeMap::new();
    let mut report = LoadReport::default();
    let mut span = nggc_obs::span("loader.load_directory");
    span.field("dir", dir.display());

    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().map(|e| e == "meta").unwrap_or(false) {
            continue; // sidecars are picked up with their data file
        }
        let Ok(format) = FileFormat::from_path(&path) else {
            report.skipped.push(path);
            continue;
        };
        let key = format_label(format);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                by_format.entry(key).or_insert_with(|| (format, Vec::new())).1.push((path, text))
            }
            Err(e) => report.failed.push((path, e.to_string())),
        }
    }

    let dir_name = dir
        .file_name()
        .map(|n| n.to_string_lossy().to_uppercase())
        .unwrap_or_else(|| "IMPORT".to_owned());
    let reg = nggc_obs::global();
    for (label, (format, files)) in by_format {
        let mut dataset = Dataset::new(format!("{dir_name}_{label}"), format.schema());
        // Per-format parse metrics: file/row/error counts and parse wall
        // time, labelled by the format name.
        let c_files = reg.counter_with("nggc_loader_files_total", &[("format", label)]);
        let c_rows = reg.counter_with("nggc_loader_rows_total", &[("format", label)]);
        let c_errors = reg.counter_with("nggc_loader_parse_errors_total", &[("format", label)]);
        let h_parse = reg.histogram_with("nggc_loader_parse_ns", &[("format", label)]);
        for (path, text) in files {
            let t0 = std::time::Instant::now();
            let parsed = format.parse(&text);
            h_parse.record_duration(t0.elapsed());
            c_files.inc();
            match parsed {
                Ok(regions) => {
                    c_rows.add(regions.len() as u64);
                    report.loaded.push((path.clone(), regions.len()));
                    let stem = path
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "sample".to_owned());
                    let mut sample = Sample::new(stem, &dataset.name).with_regions(regions);
                    let sidecar = path.with_extension(format!(
                        "{}.meta",
                        path.extension().map(|e| e.to_string_lossy()).unwrap_or_default()
                    ));
                    if let Ok(meta_text) = std::fs::read_to_string(&sidecar) {
                        if let Ok(meta) = parse_metadata(&meta_text) {
                            sample.metadata = meta;
                        }
                    }
                    sample.metadata.insert("imported_from", path.display().to_string());
                    sample.metadata.insert("format", label.to_owned());
                    dataset.add_sample_unchecked(sample);
                }
                Err(e) => {
                    c_errors.inc();
                    report.failed.push((path, e.to_string()));
                }
            }
        }
        if dataset.sample_count() > 0 {
            report.datasets.push(dataset);
        }
    }
    span.field("datasets", report.datasets.len())
        .field("loaded", report.loaded.len())
        .field("skipped", report.skipped.len())
        .field("failed", report.failed.len());
    Ok(report)
}

fn format_label(format: FileFormat) -> &'static str {
    match format {
        FileFormat::Bed => "BED",
        FileFormat::NarrowPeak => "NARROWPEAK",
        FileFormat::BroadPeak => "BROADPEAK",
        FileFormat::Gtf => "GTF",
        FileFormat::Gff3 => "GFF3",
        FileFormat::Vcf => "VCF",
        FileFormat::BedGraph => "BEDGRAPH",
        FileFormat::Wig => "WIG",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn setup(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nggc_loader_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mixed_directory_loads_grouped_by_format() {
        let dir = setup("mixed");
        fs::write(dir.join("a.bed"), "chr1\t0\t10\tx\t1\t+\n").unwrap();
        fs::write(dir.join("b.bed"), "chr2\t5\t15\ty\t2\t-\n").unwrap();
        fs::write(dir.join("m.vcf"), "chr1\t7\t.\tA\tC\t50\tPASS\t.\n").unwrap();
        fs::write(dir.join("notes.txt"), "not genomic").unwrap();
        let report = load_directory(&dir).unwrap();
        assert_eq!(report.datasets.len(), 2, "BED and VCF datasets");
        assert_eq!(report.loaded.len(), 3);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.failed.is_empty());
        let bed = report.datasets.iter().find(|d| d.name.ends_with("_BED")).unwrap();
        assert_eq!(bed.sample_count(), 2);
        bed.validate().unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_metadata_attached() {
        let dir = setup("meta");
        fs::write(dir.join("peaks.bed"), "chr1\t0\t10\tx\t1\t+\n").unwrap();
        fs::write(dir.join("peaks.bed.meta"), "cell\tHeLa\nantibody\tCTCF\n").unwrap();
        let report = load_directory(&dir).unwrap();
        let s = &report.datasets[0].samples[0];
        assert!(s.metadata.has("cell", "HeLa"));
        assert!(s.metadata.has("antibody", "CTCF"));
        assert!(s.metadata.contains_attribute("imported_from"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_failures_reported_not_fatal() {
        let dir = setup("fail");
        fs::write(dir.join("good.bed"), "chr1\t0\t10\n").unwrap();
        fs::write(dir.join("bad.bed"), "chr1\tnot_a_number\t10\n").unwrap();
        let report = load_directory(&dir).unwrap();
        assert_eq!(report.datasets.len(), 1);
        assert_eq!(report.datasets[0].sample_count(), 1);
        assert_eq!(report.loaded.len(), 1);
        assert!(report.loaded[0].0.ends_with("good.bed"));
        assert_eq!(report.loaded[0].1, 1, "region count recorded");
        assert_eq!(report.failed.len(), 1);
        assert!(report.failed[0].1.contains("bad start"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_file_lands_in_exactly_one_section() {
        let dir = setup("partition");
        fs::write(dir.join("a.bed"), "chr1\t0\t10\n").unwrap();
        fs::write(dir.join("b.bed"), "garbage\there\n").unwrap();
        fs::write(dir.join("c.gtf"), "chr1\tsrc\tgene\t1\t100\t.\t+\t.\tgene_id \"g\";\n").unwrap();
        fs::write(dir.join("d.vcf"), "chr1\tbroken\n").unwrap();
        fs::write(dir.join("readme.txt"), "hello").unwrap();
        let report = load_directory(&dir).unwrap();
        assert_eq!(report.loaded.len(), 2, "a.bed and c.gtf");
        assert_eq!(report.failed.len(), 2, "b.bed and d.vcf");
        assert_eq!(report.skipped.len(), 1, "readme.txt");
        assert_eq!(report.loaded.len() + report.failed.len() + report.skipped.len(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_metrics_recorded() {
        let reg = nggc_obs::global();
        let files0 = reg.counter_with("nggc_loader_files_total", &[("format", "BED")]).get();
        let rows0 = reg.counter_with("nggc_loader_rows_total", &[("format", "BED")]).get();
        let errs0 = reg.counter_with("nggc_loader_parse_errors_total", &[("format", "BED")]).get();
        let dir = setup("metrics");
        fs::write(dir.join("good.bed"), "chr1\t0\t10\nchr1\t20\t30\n").unwrap();
        fs::write(dir.join("bad.bed"), "chr1\tnope\t10\n").unwrap();
        load_directory(&dir).unwrap();
        // Deltas are >= because other tests may load BED files in parallel.
        assert!(
            reg.counter_with("nggc_loader_files_total", &[("format", "BED")]).get() >= files0 + 2
        );
        assert!(
            reg.counter_with("nggc_loader_rows_total", &[("format", "BED")]).get() >= rows0 + 2
        );
        assert!(
            reg.counter_with("nggc_loader_parse_errors_total", &[("format", "BED")]).get() > errs0
        );
        assert!(reg.histogram_with("nggc_loader_parse_ns", &[("format", "BED")]).count() >= 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory() {
        let dir = setup("empty");
        let report = load_directory(&dir).unwrap();
        assert!(report.datasets.is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
