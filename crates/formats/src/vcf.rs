//! VCF-lite — variant calls as GDM regions.
//!
//! Mutations are one of the processed-data types GDM unifies (paper §2:
//! "a single model describes ... mutations"). We implement the site-level
//! core of VCF 4.x: `CHROM POS ID REF ALT QUAL FILTER INFO` (genotype
//! columns are ignored). A variant at 1-based `POS` with reference allele
//! `REF` maps to the half-open region `[POS-1, POS-1+len(REF))` — so SNVs
//! are 1 bp regions and pure insertions are zero-length points. Symbolic
//! alleles (`<DEL>`, `<DUP>`, …) carry their true extent in the INFO
//! `END=` key (1-based inclusive), which maps to `[POS-1, END)`.

use crate::error::FormatError;
use nggc_gdm::{Attribute, GRegion, Schema, Strand, Value, ValueType};

/// The GDM schema for VCF sites.
pub fn vcf_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("id", ValueType::Str),
        Attribute::new("ref", ValueType::Str),
        Attribute::new("alt", ValueType::Str),
        Attribute::new("qual", ValueType::Float),
        Attribute::new("filter", ValueType::Str),
        Attribute::new("info", ValueType::Str),
    ])
    .expect("VCF schema attributes are valid")
}

/// Parse VCF text (header lines `#...` skipped) into GDM regions.
pub fn parse_vcf(text: &str) -> Result<Vec<GRegion>, FormatError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 8 {
            return Err(FormatError::malformed(
                lineno,
                format!("expected 8 fields, found {}", fields.len()),
            ));
        }
        let pos: u64 = fields[1]
            .parse()
            .map_err(|_| FormatError::malformed(lineno, format!("bad POS {:?}", fields[1])))?;
        if pos == 0 {
            return Err(FormatError::malformed(lineno, "VCF POS is 1-based; 0 is invalid"));
        }
        let reference = fields[3];
        // Symbolic alleles (<DEL>, <INS>) have no literal length; their
        // extent, if any, is in INFO's END key. Without END, 1 bp.
        let ref_len = if reference.starts_with('<') { 1 } else { reference.len() as u64 };
        let left = pos - 1;
        let right = match info_end(fields[7]) {
            Some(Ok(end)) => {
                // END is the 1-based inclusive last base, i.e. the
                // half-open right bound in 0-based coordinates.
                if end < left {
                    return Err(FormatError::malformed(
                        lineno,
                        format!("INFO END={end} precedes POS {pos}"),
                    ));
                }
                end
            }
            Some(Err(bad)) => {
                return Err(FormatError::malformed(lineno, format!("bad INFO END {bad:?}")));
            }
            None => left.checked_add(ref_len).ok_or_else(|| {
                FormatError::malformed(lineno, "coordinate overflow (POS + REF length)")
            })?,
        };
        let qual = Value::parse_as(fields[5], ValueType::Float)
            .map_err(|e| FormatError::malformed(lineno, e.to_string()))?;
        let values = vec![
            Value::parse_as(fields[2], ValueType::Str).unwrap_or(Value::Null),
            Value::Str(reference.to_owned()),
            Value::Str(fields[4].to_owned()),
            qual,
            Value::Str(fields[6].to_owned()),
            Value::Str(fields[7].to_owned()),
        ];
        out.push(GRegion::new(fields[0], left, right, Strand::Unstranded).with_values(values));
    }
    Ok(out)
}

/// Extract the `END=` key from a semicolon-separated INFO column.
/// Returns `None` when absent, `Some(Err(raw))` when unparseable.
fn info_end(info: &str) -> Option<Result<u64, String>> {
    info.split(';').find_map(|kv| {
        let end = kv.strip_prefix("END=")?;
        Some(end.parse::<u64>().map_err(|_| end.to_owned()))
    })
}

/// Serialise regions (under [`vcf_schema`]) back to VCF body lines with a
/// minimal header.
pub fn write_vcf(regions: &[GRegion]) -> String {
    let mut out =
        String::from("##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\n");
    for r in regions {
        let v = |i: usize| r.values.get(i).map(Value::render).unwrap_or_else(|| ".".into());
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            r.chrom,
            r.left + 1,
            v(0),
            v(1),
            v(2),
            v(3),
            v(4),
            v(5),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const VCF: &str = "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\nchr17\t7675088\trs28934578\tC\tT\t228\tPASS\tDP=100\n";

    #[test]
    fn snv_is_one_bp_region() {
        let rs = parse_vcf(VCF).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!((rs[0].left, rs[0].right), (7675087, 7675088));
        assert_eq!(rs[0].values[0], Value::Str("rs28934578".into()));
        assert_eq!(rs[0].values[3], Value::Float(228.0));
    }

    #[test]
    fn deletion_spans_ref_allele() {
        let text = "chr1\t100\t.\tACGT\tA\t.\tPASS\t.\n";
        let rs = parse_vcf(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (99, 103));
        assert_eq!(rs[0].values[0], Value::Null, "missing ID is null");
        assert_eq!(rs[0].values[3], Value::Null, "missing QUAL is null");
    }

    #[test]
    fn symbolic_allele_without_end_is_point() {
        let text = "chr1\t500\t.\t<DEL>\tN\t.\tPASS\tSVLEN=-100\n";
        let rs = parse_vcf(text).unwrap();
        assert_eq!(rs[0].len(), 1);
    }

    #[test]
    fn symbolic_allele_spans_info_end() {
        // A 100 bp deletion: POS 500, END 599 (1-based inclusive)
        // → 0-based half-open [499, 599).
        let text = "chr1\t500\tsv1\t<DEL>\tN\t.\tPASS\tSVTYPE=DEL;END=599;SVLEN=-100\n";
        let rs = parse_vcf(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (499, 599));
        assert_eq!(rs[0].len(), 100);

        // <DUP> gets the same treatment.
        let text = "chr2\t1000\t.\t<DUP>\tN\t.\tPASS\tEND=1499\n";
        let rs = parse_vcf(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (999, 1499));
    }

    #[test]
    fn info_end_applies_to_literal_alleles_too() {
        let text = "chr1\t100\t.\tA\t<DEL>\t.\tPASS\tEND=150\n";
        let rs = parse_vcf(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (99, 150));
    }

    #[test]
    fn rejects_end_before_pos_and_garbage_end() {
        assert!(parse_vcf("chr1\t500\t.\t<DEL>\tN\t.\tPASS\tEND=10\n").is_err());
        assert!(parse_vcf("chr1\t500\t.\t<DEL>\tN\t.\tPASS\tEND=soon\n").is_err());
    }

    #[test]
    fn end_equal_to_left_makes_zero_length_region() {
        // END=POS-1 encodes a zero-length breakpoint (e.g. pure insertion).
        let text = "chr1\t500\t.\t<INS>\tN\t.\tPASS\tEND=499\n";
        let rs = parse_vcf(text).unwrap();
        assert_eq!((rs[0].left, rs[0].right), (499, 499));
        assert_eq!(rs[0].len(), 0);
    }

    #[test]
    fn rejects_pos_zero() {
        assert!(parse_vcf("chr1\t0\t.\tA\tC\t.\tPASS\t.\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let rs = parse_vcf(VCF).unwrap();
        let rs2 = parse_vcf(&write_vcf(&rs)).unwrap();
        assert_eq!(rs, rs2);
    }
}
