//! Edge cases at the format boundary: zero-length regions, unsorted
//! inputs, overlapping WIG spans, and null tokens — each checked
//! through the v2 binary container where storage is involved.

use nggc_formats::native_v2::{decode_dataset_v2, encode_dataset_v2};
use nggc_formats::{parse_bed, parse_vcf, parse_wig, vcf_schema, BedOptions};
use nggc_gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, Value, ValueType};

/// Encode → decode through the v2 container.
fn v2_roundtrip(d: &Dataset) -> Dataset {
    decode_dataset_v2(&encode_dataset_v2(d).expect("encode")).expect("decode")
}

/// Structural equality ignoring process-local sample IDs.
fn assert_dataset_eq(a: &Dataset, b: &Dataset) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.schema, b.schema);
    assert_eq!(a.sample_count(), b.sample_count());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.regions, y.regions);
        let pairs = |s: &Sample| -> Vec<(String, String)> {
            s.metadata.iter().map(|(k, v)| (k.to_owned(), v.to_owned())).collect()
        };
        assert_eq!(pairs(x), pairs(y));
    }
}

#[test]
fn zero_length_regions_survive_v2() {
    // Zero-length regions model insertion points / breakpoints; GDM's
    // half-open invariant is left <= right, so left == right is legal.
    let schema = Schema::new(vec![Attribute::new("x", ValueType::Int)]).unwrap();
    let mut d = Dataset::new("ZERO", schema);
    d.add_sample(
        Sample::new("s", "ZERO")
            .with_regions(vec![
                GRegion::new("chr1", 100, 100, Strand::Pos).with_values(vec![1i64.into()]),
                GRegion::new("chr1", 100, 200, Strand::Neg).with_values(vec![2i64.into()]),
                GRegion::new("chr2", 0, 0, Strand::Unstranded).with_values(vec![3i64.into()]),
            ])
            .with_metadata(Metadata::from_pairs([("kind", "breakpoints")])),
    )
    .unwrap();
    d.validate().unwrap();

    let back = v2_roundtrip(&d);
    assert_dataset_eq(&d, &back);
    assert_eq!(back.samples[0].regions[0].len(), 0, "zero length preserved");
    assert_eq!(back.samples[0].regions[2].len(), 0, "zero at origin preserved");
}

#[test]
fn unsorted_input_files_are_resorted_on_ingest() {
    // A BED file whose lines are in neither chromosome nor coordinate
    // order: the parser preserves file order, `with_regions` restores
    // the genome-order invariant.
    let text = "chr2\t500\t600\nchr1\t300\t400\nchr1\t100\t200\nchr10\t0\t50\nchr1\t100\t150\n";
    let regions = parse_bed(text, &BedOptions::bed3()).unwrap();
    assert_eq!(regions[0].chrom.as_str(), "chr2", "parser keeps file order");

    let sample = Sample::new("messy", "D").with_regions(regions);
    assert!(sample.is_sorted(), "with_regions restores genome order");
    let coords: Vec<(&str, u64)> =
        sample.regions.iter().map(|r| (r.chrom.as_str(), r.left)).collect();
    assert_eq!(
        coords,
        vec![("chr1", 100), ("chr1", 100), ("chr1", 300), ("chr2", 500), ("chr10", 0)],
        "chr10 sorts after chr2 (genome order, not lexicographic)"
    );

    // And the invariant survives binary storage.
    let mut d = Dataset::new("MESSY", Schema::empty());
    let stripped = sample.regions.iter().map(|r| r.clone().with_values(vec![])).collect();
    d.add_sample(Sample::new("messy", "MESSY").with_regions(stripped)).unwrap();
    let back = v2_roundtrip(&d);
    assert_dataset_eq(&d, &back);
    assert!(back.samples[0].is_sorted());
}

#[test]
fn wig_span_larger_than_step_yields_overlapping_regions() {
    // span=25 over step=10: each value covers 25 bp, so consecutive
    // regions overlap by 15 bp. The parser must not clip or reject them.
    let text = "fixedStep chrom=chr1 start=1 step=10 span=25\n1.0\n2.0\n3.0\n";
    let rs = parse_wig(text).unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!((rs[0].left, rs[0].right), (0, 25));
    assert_eq!((rs[1].left, rs[1].right), (10, 35));
    assert_eq!((rs[2].left, rs[2].right), (20, 45));
    assert!(rs[1].left < rs[0].right, "consecutive intervals overlap");

    // Overlapping intervals are valid GDM regions and survive v2.
    let mut d = Dataset::new("WIG", nggc_formats::wig_schema());
    d.add_sample(Sample::new("track", "WIG").with_regions(rs)).unwrap();
    d.validate().unwrap();
    let back = v2_roundtrip(&d);
    assert_dataset_eq(&d, &back);
}

#[test]
fn null_tokens_roundtrip_through_v2() {
    // VCF uses `.` for missing ID/QUAL; those become Value::Null and
    // must come back as nulls (not the string "." or 0.0) from storage.
    let text = "chr1\t100\t.\tA\tT\t.\tPASS\tDP=10\nchr1\t200\trs7\tC\tG\t50\t.\t.\n";
    let regions = parse_vcf(text).unwrap();
    assert_eq!(regions[0].values[0], Value::Null, "missing ID is null");
    assert_eq!(regions[0].values[3], Value::Null, "missing QUAL is null");

    let mut d = Dataset::new("VARS", vcf_schema());
    d.add_sample(Sample::new("tumor", "VARS").with_regions(regions)).unwrap();
    let back = v2_roundtrip(&d);
    assert_dataset_eq(&d, &back);
    assert_eq!(back.samples[0].regions[0].values[0], Value::Null);
    assert_eq!(back.samples[0].regions[0].values[3], Value::Null);

    // Mixed null / empty-string / present values in every typed column:
    // Null and "" are distinct and both survive.
    let schema = Schema::new(vec![
        Attribute::new("i", ValueType::Int),
        Attribute::new("f", ValueType::Float),
        Attribute::new("s", ValueType::Str),
        Attribute::new("b", ValueType::Bool),
    ])
    .unwrap();
    let mut d = Dataset::new("NULLS", schema);
    d.add_sample(Sample::new("s", "NULLS").with_regions(vec![
        GRegion::new("chr1", 0, 1, Strand::Pos).with_values(vec![
            Value::Null,
            Value::Null,
            Value::Str(String::new()),
            Value::Null,
        ]),
        GRegion::new("chr1", 1, 2, Strand::Neg).with_values(vec![
            Value::Int(-7),
            Value::Float(f64::NAN),
            Value::Null,
            Value::Bool(true),
        ]),
    ]))
    .unwrap();
    let back = v2_roundtrip(&d);
    let r0 = &back.samples[0].regions[0];
    let r1 = &back.samples[0].regions[1];
    assert_eq!(r0.values, vec![Value::Null, Value::Null, Value::Str(String::new()), Value::Null]);
    assert_eq!(r1.values[0], Value::Int(-7));
    assert!(matches!(r1.values[1], Value::Float(x) if x.is_nan()), "NaN survives bit-exactly");
    assert_eq!(r1.values[2], Value::Null);
    assert_eq!(r1.values[3], Value::Bool(true));
}
