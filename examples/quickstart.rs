//! Quickstart: the paper's Figure 2 dataset and §2 example query.
//!
//! Builds the exact PEAKS instance of Figure 2 (two ChIP-seq samples with
//! a `p_value` attribute, metadata incl. `karyotype: cancer` and
//! `sex: female`), persists it in the GDM native format, and runs the
//! paper's three-operation MAP query over a small promoter annotation.
//!
//! Run with: `cargo run --example quickstart`

use nggc::formats::native;
use nggc::gdm::*;
use nggc::gmql::GmqlEngine;

fn main() {
    // ---- Figure 2: the PEAKS dataset ------------------------------------
    let peaks_schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
    let mut peaks = Dataset::new("PEAKS", peaks_schema);

    // Sample 1: five stranded regions, karyotype "cancer".
    peaks
        .add_sample(
            Sample::new("sample_1", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 2940, 3400, Strand::Pos).with_values(vec![0.0001.into()]),
                    GRegion::new("chr1", 6120, 7030, Strand::Neg).with_values(vec![0.00005.into()]),
                    GRegion::new("chr1", 9140, 10400, Strand::Pos).with_values(vec![0.0003.into()]),
                    GRegion::new("chr2", 120, 680, Strand::Pos).with_values(vec![0.00002.into()]),
                    GRegion::new("chr2", 830, 1070, Strand::Neg).with_values(vec![0.0007.into()]),
                ])
                .with_metadata(Metadata::from_pairs([
                    ("antibody_target", "CTCF"),
                    ("karyotype", "cancer"),
                    ("organism", "Homo sapiens"),
                    ("dataType", "ChipSeq"),
                ])),
        )
        .unwrap();

    // Sample 2: four unstranded regions, taken from a female donor.
    peaks
        .add_sample(
            Sample::new("sample_2", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 886, 1456, Strand::Unstranded)
                        .with_values(vec![0.0004.into()]),
                    GRegion::new("chr1", 1860, 2430, Strand::Unstranded)
                        .with_values(vec![0.0001.into()]),
                    GRegion::new("chr2", 400, 960, Strand::Unstranded)
                        .with_values(vec![0.0005.into()]),
                    GRegion::new("chr2", 1800, 2400, Strand::Unstranded)
                        .with_values(vec![0.00006.into()]),
                ])
                .with_metadata(Metadata::from_pairs([
                    ("antibody_target", "CTCF"),
                    ("sex", "female"),
                    ("dataType", "ChipSeq"),
                ])),
        )
        .unwrap();
    peaks.validate().expect("Figure-2 dataset satisfies the GDM constraints");

    println!("== Figure 2: PEAKS dataset ==");
    println!("{}", peaks.stats());
    for s in &peaks.samples {
        println!("  {} ({} regions)", s.name, s.region_count());
        for r in &s.regions {
            println!("    {r}");
        }
    }

    // Persist in the GDM native layout and read it back.
    let dir = std::env::temp_dir().join("nggc_quickstart").join("PEAKS");
    native::write_dataset(&peaks, &dir).expect("write native dataset");
    let reloaded = native::read_dataset(&dir).expect("read native dataset");
    assert_eq!(reloaded.region_count(), peaks.region_count());
    println!("\nround-tripped through {} ✓", dir.display());

    // ---- Annotations: a miniature UCSC sample -----------------------------
    let ann_schema = Schema::new(vec![Attribute::new("annType", ValueType::Str)]).unwrap();
    let mut annotations = Dataset::new("ANNOTATIONS", ann_schema);
    annotations
        .add_sample(
            Sample::new("ucsc", "ANNOTATIONS")
                .with_regions(vec![
                    GRegion::new("chr1", 2500, 3500, Strand::Unstranded)
                        .with_values(vec!["promoter".into()]),
                    GRegion::new("chr1", 6000, 7500, Strand::Unstranded)
                        .with_values(vec!["promoter".into()]),
                    GRegion::new("chr2", 0, 1000, Strand::Unstranded)
                        .with_values(vec!["promoter".into()]),
                    GRegion::new("chr2", 1500, 2000, Strand::Unstranded)
                        .with_values(vec!["enhancer".into()]),
                ])
                .with_metadata(Metadata::from_pairs([("source", "UCSC")])),
        )
        .unwrap();

    // ---- The paper's §2 query, verbatim shape ------------------------------
    let mut engine = GmqlEngine::with_workers(4);
    engine.register(annotations);
    engine.register(peaks);

    let query = "
        PROMS  = SELECT(region: annType == 'promoter') ANNOTATIONS;
        PEAKS2 = SELECT(dataType == 'ChipSeq') PEAKS;
        RESULT = MAP(peak_count AS COUNT) PROMS PEAKS2;
        MATERIALIZE RESULT;
    ";
    println!("\n== GMQL query ==\n{query}");
    let (plan, optimized, report) = engine.explain(query).unwrap();
    println!("-- logical plan --\n{plan}");
    println!("-- optimized ({report:?}) --\n{optimized}");

    let out = engine.run(query).unwrap();
    let result = &out["RESULT"];
    println!("== RESULT: one sample per (reference, experiment) pair ==");
    for s in &result.samples {
        println!("  {}", s.name);
        for r in &s.regions {
            println!("    {r}");
        }
        println!("    provenance:\n{}", indent(&s.provenance.to_string(), 6));
    }
    assert_eq!(result.sample_count(), 2);
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}
