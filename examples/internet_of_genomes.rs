//! The Internet of Genomes (paper §4.5), end to end.
//!
//! Simulated research centers publish datasets through the publishing
//! protocol; a third-party search service crawls them, indexes all
//! metadata, caches some datasets, answers keyword queries with
//! snippets, and serves asynchronous downloads. Ontology-mediated search
//! (§4.3) runs over the same index: querying "cancer" finds HeLa/K562
//! experiments that never mention the word.
//!
//! Run with: `cargo run --example internet_of_genomes`

use nggc::ontology::mini_umls;
use nggc::search::{Host, MetadataSearch, RankMode, SearchService, SimulatedHost};
use nggc::synth::{generate_encode, EncodeConfig, Genome};

fn main() {
    // ---- research centers publish their data ------------------------------
    let genome = Genome::human(0.001);
    let mut hosts: Vec<SimulatedHost> = Vec::new();
    for (h, center) in ["polimi.example", "broad.example", "sanger.example"].iter().enumerate() {
        let mut host = SimulatedHost::new(*center);
        for d in 0..4 {
            let config = EncodeConfig {
                samples: 5,
                mean_peaks_per_sample: 120.0,
                seed: (h * 10 + d) as u64,
                ..Default::default()
            };
            let mut ds = generate_encode(&genome, &config);
            ds.name = format!("{}_DS{}", center.split('.').next().unwrap_or("x"), d);
            host.publish(ds);
        }
        hosts.push(host);
    }
    let host_refs: Vec<&dyn Host> = hosts.iter().map(|h| h as &dyn Host).collect();
    println!("== {} hosts publishing 4 datasets each ==", hosts.len());

    // ---- the search service crawls ------------------------------------------
    let mut service = SearchService::new(2); // polite: ≤2 dataset fetches/host
    let stats = service.crawl(&host_refs);
    println!(
        "crawl: {} hosts, {} entries seen, {} indexed, {} datasets cached ({} KiB)",
        stats.hosts_visited,
        stats.entries_seen,
        stats.entries_indexed,
        stats.datasets_fetched,
        stats.bytes_fetched / 1024
    );
    let stats2 = service.crawl(&host_refs);
    println!("re-crawl (nothing changed): {} entries re-indexed", stats2.entries_indexed);

    // ---- keyword search with snippets ---------------------------------------
    println!("\n== search: 'CTCF ChipSeq' ==");
    for snip in service.search("CTCF ChipSeq").iter().take(5) {
        println!(
            "  {} @ {}  [{}]  {} matched pairs, ~{} KiB",
            snip.dataset,
            snip.host,
            if snip.cached { "cached" } else { "remote" },
            snip.matched_pairs.len(),
            snip.size_bytes / 1024
        );
    }

    // ---- ontology-mediated search over the crawled index ---------------------
    let onto = mini_umls();
    let search = MetadataSearch::new(service.index(), Some(&onto));
    let plain = search.search("cancer", RankMode::TfIdf);
    let expanded = search.search("cancer", RankMode::Expanded);
    println!("\n== ontology mediation (§4.3) ==");
    println!("'cancer' plain TF-IDF hits: {}", plain.len());
    println!("'cancer' ontology-expanded hits: {} (HeLa/K562/HepG2… count)", expanded.len());
    assert!(expanded.len() > plain.len(), "expansion must widen recall");

    // ---- asynchronous download ------------------------------------------------
    let pick = service.search("ChipSeq").first().map(|s| s.link.clone()).expect("some hit");
    println!("\n== asynchronous download of {pick} ==");
    assert!(service.request_download(&pick));
    let done = service.poll_downloads(&host_refs, 10);
    println!("downloaded {} dataset(s): {} regions", done.len(), done[0].region_count());
    assert_eq!(done.len(), 1);
    println!("\nall checks passed ✓");
}
