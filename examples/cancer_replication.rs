//! §3 case study 1: mutations, DNA breaks, replication timing and gene
//! dis-regulation.
//!
//! "GMQL can extract differentially dis-regulated genes, intersect them
//! with regions where string breaks occur, and then count the mutations
//! in various conditions" (paper §3). The pipeline below does exactly
//! that over synthetic data with *planted* truth, then checks that the
//! recovered gene set matches the plant and that mutations are
//! statistically enriched at fragile, dis-regulated loci (GREAT-style
//! binomial test, §4.3).
//!
//! Run with: `cargo run --example cancer_replication`

use nggc::analysis::region_enrichment;
use nggc::gmql::GmqlEngine;
use nggc::synth::{generate_replication_study, Genome, ReplicationStudyConfig};
use std::collections::BTreeSet;

fn main() {
    // 1% of human scale: ~31 Mbp — big enough that gene bodies are a
    // minority of the genome (so enrichment has room to show) yet runs in
    // seconds.
    let genome = Genome::human(0.01);
    let config = ReplicationStudyConfig::default();
    let study = generate_replication_study(&genome, &config);
    println!("== synthetic §3-problem-1 study ==");
    println!("genes: {}", study.genes.len());
    println!("planted dis-regulated genes: {}", study.disregulated.len());
    println!("fragile sites: {}", study.fragile_sites.len());
    println!("breaks: {}", study.breaks.region_count());
    println!("mutations: {}", study.mutations.region_count());

    let mut engine = GmqlEngine::with_workers(4);
    engine.register(study.expression.clone());
    engine.register(study.breaks.clone());
    engine.register(study.mutations.clone());
    engine.register(study.replication.clone());

    // Step 1-3 in GMQL: per-condition expression, genes near breaks,
    // mutation counts over the candidate gene bodies.
    let query = "
        CONTROL  = SELECT(condition == 'control') EXPRESSION;
        INDUCED  = SELECT(condition == 'induced') EXPRESSION;
        # Join the two conditions on identical gene bodies and keep genes
        # whose expression dropped at least 2x upon oncogene induction.
        BOTH     = JOIN(DLE(-1); output: LEFT) CONTROL INDUCED;
        DISREG   = SELECT(region: left.expression > right.expression * 2
                          AND left.gene == right.gene) BOTH;
        # Intersect dis-regulated genes with DNA break points (distance <= 0).
        BROKEN   = JOIN(DLE(0); output: LEFT) DISREG BREAKS;
        # Count mutations falling on each candidate gene.
        RESULT   = MAP(mutation_count AS COUNT, mean_vaf AS AVG(vaf)) BROKEN MUTATIONS;
        MATERIALIZE RESULT;
    ";
    println!("\n== GMQL pipeline ==\n{query}");
    let out = engine.run(query).unwrap();
    let result = &out["RESULT"];

    // Candidate genes = distinct left.gene values with >= 1 break overlap.
    let gene_pos = result
        .schema
        .position("left.left.gene")
        .or(result.schema.position("left.gene"))
        .expect("gene attribute present");
    let mut candidates: BTreeSet<String> = BTreeSet::new();
    let mut mutations_on_candidates = 0u64;
    let mut candidate_bp = 0u64;
    let count_pos = result.schema.position("mutation_count").unwrap();
    for s in &result.samples {
        let mut seen_coords: BTreeSet<(String, u64, u64)> = BTreeSet::new();
        for r in &s.regions {
            if let Some(g) = r.values[gene_pos].as_str() {
                candidates.insert(g.to_owned());
            }
            // Each gene body may appear once per overlapping break; count
            // its mutations and length once.
            let key = (r.chrom.as_str().to_owned(), r.left, r.right);
            if seen_coords.insert(key) {
                mutations_on_candidates += r.values[count_pos].as_i64().unwrap_or(0).max(0) as u64;
                candidate_bp += r.len();
            }
        }
    }

    let planted: BTreeSet<String> = study.disregulated.iter().cloned().collect();
    let recovered: BTreeSet<_> = candidates.intersection(&planted).collect();
    println!("== recovery of the planted signal ==");
    println!("candidate genes (dis-regulated ∩ broken): {}", candidates.len());
    println!("planted dis-regulated recovered: {}/{}", recovered.len(), planted.len());
    let false_hits = candidates.len() - recovered.len();
    println!("false candidates: {false_hits}");

    // Enrichment: are mutations concentrated on candidate genes?
    let total_mutations = study.mutations.region_count() as u64;
    let enrich = region_enrichment(
        mutations_on_candidates,
        total_mutations,
        candidate_bp,
        genome.total_len(),
    );
    println!("\n== GREAT-style mutation enrichment at candidate loci ==");
    println!(
        "mutations on candidates: {} of {} (expected {:.2})",
        enrich.hits, enrich.study_size, enrich.expected
    );
    println!("fold enrichment: {:.1}", enrich.fold);
    println!("binomial p-value: {:.3e}", enrich.p_value);

    assert!(
        recovered.len() * 10 >= planted.len() * 9,
        "pipeline should recover >=90% of planted genes"
    );
    assert!(enrich.fold > 5.0, "mutations must be enriched at candidate loci");
    assert!(enrich.p_value < 1e-6);
    println!("\nall checks passed ✓");
}
