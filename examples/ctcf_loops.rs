//! §3 case study 2 (Figure 3): CTCF loops, enhancers, and gene
//! regulation.
//!
//! "GMQL can be used to extract candidate gene-enhancer pairs by suitable
//! intersections of the signals in Figure 3 — i.e., CTCF regions, the
//! regions of the three methylation experiments (H3K27AC, H3K4me1,
//! H3K4me3), and gene promoter regions" (paper §3). The pipeline:
//!
//! 1. enhancer candidates = H3K27ac ∩ H3K4me1 peaks;
//! 2. active promoters = promoters ∩ H3K4me3, on expressed genes;
//! 3. candidate pairs = enhancer and promoter enclosed in the **same
//!    CTCF loop** (the spatial condition favouring the interaction).
//!
//! The synthetic study plants true pairs, so the example reports
//! precision/recall of the extraction.
//!
//! Run with: `cargo run --example ctcf_loops`

use nggc::gmql::GmqlEngine;
use nggc::synth::{generate_ctcf_study, CtcfStudyConfig, Genome};
use std::collections::BTreeSet;

fn main() {
    let genome = Genome::human(0.02);
    let study = generate_ctcf_study(&genome, &CtcfStudyConfig::default());
    println!("== synthetic §3-problem-2 study (Figure 3) ==");
    println!("CTCF loops: {}", study.loops.region_count());
    println!(
        "histone-mark samples: {} ({} peaks)",
        study.marks.sample_count(),
        study.marks.region_count()
    );
    println!("planted enhancer→gene pairs: {}", study.true_pairs.len());

    let mut engine = GmqlEngine::with_workers(4);
    engine.register(study.loops.clone());
    engine.register(study.marks.clone());
    engine.register(study.annotations.clone());
    engine.register(study.expression.clone());

    let query = "
        K27    = SELECT(antibody == 'H3K27ac') MARKS;
        K4ME1  = SELECT(antibody == 'H3K4me1') MARKS;
        K4ME3  = SELECT(antibody == 'H3K4me3') MARKS;

        # 1. Enhancer candidates carry BOTH activating marks (yellow
        #    rectangles of Figure 3).
        ENH0   = JOIN(DLE(-1); output: INT) K27 K4ME1;
        ENH    = PROJECT(esig AS left.signal) ENH0;

        # 2. Active promoters: H3K4me3-marked promoter regions of genes
        #    whose expression exceeds 10 (activity revealed by experiment).
        PROMS  = SELECT(region: annType == 'promoter') ANNOTATIONS;
        APROM0 = JOIN(DLE(-1); output: LEFT) PROMS K4ME3;
        APROM1 = PROJECT(gene0 AS left.name) APROM0;
        EXPR   = SELECT(region: expression > 10) EXPRESSION;
        APROM2 = JOIN(DLE(0); output: LEFT) APROM1 EXPR;
        APROM3 = SELECT(region: left.gene0 == right.gene) APROM2;
        APROM  = PROJECT(gene AS left.gene0) APROM3;

        # 3. Anchor both to CTCF loops and keep pairs in the SAME loop.
        LE0    = JOIN(DLE(-1); output: RIGHT) CTCF_LOOPS ENH;
        LE     = PROJECT(eloop AS left.loop_id, enh_sig AS right.esig) LE0;
        LP0    = JOIN(DLE(-1); output: RIGHT) CTCF_LOOPS APROM;
        LP     = PROJECT(ploop AS left.loop_id, pgene AS right.gene) LP0;
        PAIRS0 = JOIN(DLE(500000); output: CAT) LE LP;
        PAIRS  = SELECT(region: left.eloop == right.ploop) PAIRS0;
        MATERIALIZE PAIRS;
    ";
    println!("\n== GMQL pipeline ==\n{query}");
    let out = engine.run(query).unwrap();
    let pairs = &out["PAIRS"];

    let gene_pos = pairs.schema.position("right.pgene").expect("gene attribute");
    let loop_pos = pairs.schema.position("left.eloop").expect("loop attribute");
    let mut candidate_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &pairs.samples {
        for r in &s.regions {
            if let (Some(lp), Some(g)) = (r.values[loop_pos].as_str(), r.values[gene_pos].as_str())
            {
                candidate_pairs.insert((lp.to_owned(), g.to_owned()));
            }
        }
    }
    let candidate_genes: BTreeSet<&str> = candidate_pairs.iter().map(|(_, g)| g.as_str()).collect();
    let planted_genes: BTreeSet<&str> = study.true_pairs.iter().map(|(_, g)| g.as_str()).collect();

    let tp = candidate_genes.intersection(&planted_genes).count();
    let precision = tp as f64 / candidate_genes.len().max(1) as f64;
    let recall = tp as f64 / planted_genes.len().max(1) as f64;
    println!("== extraction quality vs planted truth ==");
    println!("candidate (loop, gene) pairs: {}", candidate_pairs.len());
    println!("candidate genes: {}", candidate_genes.len());
    println!("planted genes recovered: {tp}/{}", planted_genes.len());
    println!("gene precision: {precision:.3}");
    println!("gene recall: {recall:.3}");

    assert!(recall >= 0.9, "recall {recall} too low");
    assert!(precision >= 0.5, "precision {precision} too low");
    println!("\nall checks passed ✓");
}
