//! §4.1 end to end: MAP → genome space → gene network → clustering →
//! enrichment, with a text genome-browser look at the hottest gene.
//!
//! "Every map operation produces what we call a genome space ... which is
//! the starting point for data analysis (including advanced data mining
//! and computational intelligence). Such table can be also interpreted as
//! an adjacency matrix representing a network" (paper §4.1, Figure 4).
//!
//! Run with: `cargo run --example gene_network`

use nggc::analysis::{
    kmeans, pca, region_enrichment, render_tracks, silhouette, GenomeSpace, Network, Window,
};
use nggc::gmql::GmqlEngine;
use nggc::synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};

fn main() {
    let genome = Genome::human(0.002);
    let encode = generate_encode(
        &genome,
        &EncodeConfig { samples: 10, mean_peaks_per_sample: 800.0, seed: 31, ..Default::default() },
    );
    let (annotations, genes) = generate_annotations(
        &genome,
        &AnnotationConfig { genes: 40, seed: 13, ..Default::default() },
    );
    let mut engine = GmqlEngine::with_workers(4);
    engine.register(encode.clone());
    engine.register(annotations.clone());

    // 1. The genome space: MAP experiments over gene bodies.
    let out = engine
        .run(
            "GENES = SELECT(region: annType == 'gene') ANNOTATIONS;
             EXPS  = SELECT(dataType == 'ChipSeq') ENCODE;
             GS    = MAP(n AS COUNT) GENES EXPS;
             MATERIALIZE GS;",
        )
        .expect("query runs");
    let space = GenomeSpace::from_map_result(&out["GS"], "n", Some("name")).expect("space builds");
    println!("genome space: {} genes × {} experiments", space.n_regions(), space.n_experiments());

    // 2. The gene network.
    let network = Network::from_genome_space(&space, 0.75);
    let (_, components) = network.components();
    println!(
        "network @ |r|>=0.75: {} edges over {} nodes, {} components, mean |w| {:.2}",
        network.n_edges(),
        network.n_nodes(),
        components,
        network.mean_weight()
    );
    println!("top hubs: {:?}", network.hubs(5));

    // 3. Clustering with quality score.
    let clustering = kmeans(&space, 4, 60, 17);
    let quality = silhouette(&space, &clustering.assignment);
    println!("k-means (k=4): inertia {:.1}, silhouette {:.3}", clustering.inertia, quality);

    // 4. Latent structure.
    let p = pca(&space, 2, 200);
    let var_total: f64 = p.explained_variance.iter().sum();
    println!(
        "PCA: first two components explain {:.0}% + {:.0}% of variance",
        100.0 * p.explained_variance[0] / var_total.max(1e-9),
        100.0 * p.explained_variance[1] / var_total.max(1e-9),
    );

    // 5. GREAT-style enrichment: are the peaks concentrated in genes?
    let gene_bp: u64 = genes.iter().map(|g| g.body.1 - g.body.0).sum();
    let in_genes: usize = out["GS"]
        .samples
        .iter()
        .map(|s| {
            s.regions
                .iter()
                .map(|r| r.values.last().and_then(|v| v.as_i64()).unwrap_or(0) as usize)
                .sum::<usize>()
        })
        .sum();
    let total_peaks = encode.region_count();
    let enr = region_enrichment(
        (in_genes / out["GS"].sample_count().max(1)) as u64,
        (total_peaks / encode.sample_count().max(1)) as u64,
        gene_bp,
        genome.total_len(),
    );
    println!("peaks-in-genes enrichment: {:.2}x (p = {:.2e})", enr.fold, enr.p_value);

    // 6. Browse the hottest gene in the terminal.
    let (hot_idx, _) = space
        .values
        .iter()
        .enumerate()
        .max_by_key(|(_, row)| row.iter().sum::<f64>() as u64)
        .expect("non-empty");
    let hot = &space.regions[hot_idx];
    let pad = (hot.right - hot.left) / 2;
    let window = Window::new(hot.chrom.as_str(), hot.left.saturating_sub(pad), hot.right + pad, 96);
    println!("\nhottest gene {} in its window:", hot);
    // Show the annotation track + the three busiest experiments.
    let mut busiest: Vec<(usize, f64)> =
        (0..space.n_experiments()).map(|c| (c, space.values.iter().map(|r| r[c]).sum())).collect();
    busiest.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut tracks: Vec<&nggc::gdm::Dataset> = vec![&annotations];
    let top_names: Vec<String> = busiest
        .iter()
        .take(3)
        .filter_map(|(c, _)| space.experiments[*c].split("__").nth(1).map(str::to_owned))
        .collect();
    let shown: nggc::gdm::Dataset = {
        let mut ds = nggc::gdm::Dataset::new("TOP_EXPS", encode.schema.clone());
        for s in &encode.samples {
            if top_names.contains(&s.name) {
                ds.add_sample_unchecked(s.clone());
            }
        }
        ds
    };
    tracks.push(&shown);
    print!("{}", render_tracks(&window, &tracks));

    assert!(network.n_nodes() == 40);
    assert!(enr.fold > 0.5, "sanity");
    println!("\nall checks passed ✓");
}
