//! Federated GMQL query processing (paper §4.4).
//!
//! Three repository nodes own disjoint datasets. The coordinator
//! discovers them, compiles a query remotely (getting size estimates
//! before any region moves), then executes it both ways:
//!
//! * **ship-query** — the paper's paradigm: "distributing the processing
//!   to data, transferring only query results which are usually small";
//! * **ship-data** — today's practice: full data transmission first.
//!
//! The byte accounting shows why the paradigm matters.
//!
//! Run with: `cargo run --example federated_query`

use nggc::federation::{Federation, FederationNode, TransferLog};
use nggc::synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};

fn main() {
    let genome = Genome::human(0.005);

    // ---- three nodes, each owning its local data ---------------------------
    let mut federation = Federation::new();
    for (i, id) in ["polimi", "broad", "sanger"].iter().enumerate() {
        let mut node = FederationNode::new(*id, 2);
        let mut encode = generate_encode(
            &genome,
            &EncodeConfig {
                samples: 8,
                mean_peaks_per_sample: 2_000.0,
                seed: i as u64 * 7 + 1,
                ..Default::default()
            },
        );
        encode.name = "ENCODE".into();
        node.own(encode);
        let (mut annotations, _) = generate_annotations(
            &genome,
            &AnnotationConfig { genes: 300, seed: i as u64, ..Default::default() },
        );
        annotations.name = "ANNOTATIONS".into();
        node.own(annotations);
        federation.add_node(node);
    }

    // ---- discovery -----------------------------------------------------------
    let mut log = TransferLog::default();
    println!("== discovery ==");
    for (node, datasets) in federation.discover(&mut log).unwrap() {
        for d in datasets {
            println!("  {node}: {} — {}", d.name, d.stats);
        }
    }
    println!("discovery moved {} bytes in {} messages", log.total(), log.requests);

    // ---- the §2-style query, executed where the data lives ---------------------
    let query = "
        PROMS  = SELECT(region: annType == 'promoter') ANNOTATIONS;
        PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
        R      = MAP(peak_count AS COUNT) PROMS PEAKS;
        TOPS   = SELECT(region: peak_count >= 2) R;
        MATERIALIZE TOPS;
    ";

    // Remote compilation: correctness + size estimate, nothing moves.
    let mut clog = TransferLog::default();
    let estimates = federation.compile_remote("polimi", query, &mut clog).unwrap();
    println!("\n== remote compile on polimi ==");
    for e in &estimates {
        println!(
            "  estimate for {}: ~{} samples, ~{} regions, ~{} KiB",
            e.name,
            e.samples,
            e.regions,
            e.bytes / 1024
        );
    }
    println!("compilation moved only {} bytes", clog.total());

    // Ship-query vs ship-data.
    let t0 = std::time::Instant::now();
    let (q_out, q_log) = federation.ship_query("polimi", query, 64 * 1024).unwrap();
    let q_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let (d_out, d_log) =
        federation.ship_data("polimi", &["ANNOTATIONS", "ENCODE"], query, 2).unwrap();
    let d_time = t0.elapsed();

    println!("\n== ship-query vs ship-data ==");
    println!(
        "ship-query: {} samples, {} regions back; {} KiB moved; {:?}",
        q_out["TOPS"].sample_count(),
        q_out["TOPS"].region_count(),
        q_log.total() / 1024,
        q_time
    );
    println!(
        "ship-data:  {} samples, {} regions back; {} KiB moved; {:?}",
        d_out["TOPS"].sample_count(),
        d_out["TOPS"].region_count(),
        d_log.total() / 1024,
        d_time
    );
    assert_eq!(q_out["TOPS"].region_count(), d_out["TOPS"].region_count());
    let ratio = d_log.total() as f64 / q_log.total().max(1) as f64;
    println!("ship-data moves {ratio:.1}x more bytes");
    assert!(ratio > 1.0, "shipping the query must beat shipping the data");
    println!("\nall checks passed ✓");
}
