//! Script corpus: every `.gmql` file in `tests/gmql_scripts/` runs
//! against the fixture world and must produce the output cardinalities
//! recorded in its `.expect` sidecar (`name<TAB>samples<TAB>regions`
//! lines, sorted by output name).
//!
//! Each script also runs twice — optimized and unoptimized, serial and
//! parallel — and all four configurations must agree, making the corpus
//! a cheap metamorphic test bed: add a script, record its expectation,
//! and every engine configuration is covered.

use nggc::gdm::*;
use nggc::gmql::{ExecOptions, GmqlEngine};
use std::path::Path;

/// The same hand-checked world as `tests/gmql_operators.rs`.
fn fixture(workers: usize, opts: ExecOptions) -> GmqlEngine {
    let mut engine = GmqlEngine::with_workers(workers).with_options(opts);

    let genes_schema = Schema::new(vec![
        Attribute::new("annType", ValueType::Str),
        Attribute::new("name", ValueType::Str),
    ])
    .unwrap();
    let mut genes = Dataset::new("GENES", genes_schema);
    genes
        .add_sample(
            Sample::new("ref", "GENES")
                .with_regions(vec![
                    GRegion::new("chr1", 100, 200, Strand::Pos)
                        .with_values(vec!["gene".into(), "A".into()]),
                    GRegion::new("chr1", 400, 500, Strand::Neg)
                        .with_values(vec!["gene".into(), "B".into()]),
                    GRegion::new("chr1", 800, 900, Strand::Pos)
                        .with_values(vec!["gene".into(), "C".into()]),
                ])
                .with_metadata(Metadata::from_pairs([("source", "ucsc")])),
        )
        .unwrap();
    engine.register(genes);

    let peaks_schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
    let mut peaks = Dataset::new("PEAKS", peaks_schema);
    peaks
        .add_sample(
            Sample::new("hela", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 120, 140, Strand::Unstranded)
                        .with_values(vec![5.0.into()]),
                    GRegion::new("chr1", 150, 260, Strand::Unstranded)
                        .with_values(vec![7.0.into()]),
                    GRegion::new("chr1", 600, 650, Strand::Unstranded)
                        .with_values(vec![1.0.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa"), ("age", "30")])),
        )
        .unwrap();
    peaks
        .add_sample(
            Sample::new("k562", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 410, 450, Strand::Unstranded)
                        .with_values(vec![9.0.into()]),
                    GRegion::new("chr1", 860, 880, Strand::Unstranded)
                        .with_values(vec![3.0.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "K562"), ("age", "20")])),
        )
        .unwrap();
    engine.register(peaks);
    engine
}

fn summarize(out: &std::collections::HashMap<String, Dataset>) -> String {
    let mut lines: Vec<String> = out
        .iter()
        .map(|(name, ds)| format!("{name}\t{}\t{}", ds.sample_count(), ds.region_count()))
        .collect();
    lines.sort();
    lines.join("\n")
}

#[test]
fn corpus_matches_expectations_in_all_configurations() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/gmql_scripts");
    let mut scripts: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().map(|x| x == "gmql").unwrap_or(false))
        .collect();
    scripts.sort();
    assert!(scripts.len() >= 5, "corpus present");

    let configurations = [
        (1, ExecOptions { meta_first: true, optimize: true }),
        (4, ExecOptions { meta_first: true, optimize: true }),
        (4, ExecOptions { meta_first: false, optimize: false }),
        (2, ExecOptions { meta_first: true, optimize: false }),
    ];

    for script in scripts {
        let name = script.file_stem().unwrap().to_string_lossy().into_owned();
        let query = std::fs::read_to_string(&script).unwrap();
        let expect_path = script.with_extension("expect");
        let expected = std::fs::read_to_string(&expect_path)
            .unwrap_or_else(|_| panic!("missing {}", expect_path.display()))
            .trim()
            .to_owned();

        let mut summaries = Vec::new();
        for (workers, opts) in configurations {
            let engine = fixture(workers, opts);
            let out = engine
                .run(&query)
                .unwrap_or_else(|e| panic!("script {name} failed ({workers} workers): {e}"));
            summaries.push(summarize(&out));
        }
        for s in &summaries {
            assert_eq!(s, &summaries[0], "script {name}: all configurations must agree");
        }
        assert_eq!(
            summaries[0],
            expected,
            "script {name}: cardinalities changed (update {} if intentional)",
            expect_path.display()
        );
    }
}
