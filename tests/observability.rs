//! Cross-crate observability tests: the metrics registry hammered from
//! the work-stealing pool, and span parentage through the in-memory
//! subscriber (see docs/observability.md).

use nggc::engine::WorkerPool;
use nggc::obs::{self, MemorySubscriber};
use std::sync::{Arc, Mutex};

// Subscribers and the registry's enabled flag are process-global, so
// every test in this binary runs under one lock to avoid cross-talk
// (e.g. the disabled-registry test racing the hammer test).
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    // A failed sibling test must not cascade into poison errors here.
    GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn counter_hammered_from_parallel_map() {
    let _guard = global_lock();
    let reg = obs::global();
    let counter = reg.counter("test_hammer_total");
    let hist = reg.histogram("test_hammer_values");
    let before = counter.get();

    let pool = WorkerPool::new(4);
    pool.parallel_map((0..10_000u64).collect(), |i| {
        counter.inc();
        hist.record(i % 1024);
    });

    assert_eq!(counter.get() - before, 10_000, "no increments lost under contention");
    assert!(hist.count() >= 10_000);
    // Pool activity reached both the pool-local stats and the registry.
    let stats = pool.stats();
    assert_eq!(stats.jobs_executed, 10_000);
    assert!(reg.counter("nggc_pool_jobs_total").get() >= 10_000);
}

#[test]
fn memory_subscriber_records_nested_parentage() {
    let _guard = global_lock();
    obs::clear_subscribers();
    let collector = Arc::new(MemorySubscriber::new());
    obs::add_subscriber(collector.clone());

    {
        let mut outer = obs::span("it.outer");
        outer.field("k", "v");
        {
            let mut inner = obs::span("it.inner");
            inner.field("depth", 1);
            let _leaf = obs::span("it.leaf");
        }
    }
    obs::clear_subscribers();

    let records = collector.records();
    assert_eq!(records.len(), 3);
    // Close order: leaves before parents.
    let leaf = &records[0];
    let inner = &records[1];
    let outer = &records[2];
    assert_eq!(leaf.name, "it.leaf");
    assert_eq!(inner.name, "it.inner");
    assert_eq!(outer.name, "it.outer");
    assert_eq!(leaf.parent, Some(inner.id));
    assert_eq!(inner.parent, Some(outer.id));
    assert_eq!(outer.parent, None);
    assert_eq!(outer.field("k"), Some("v"));
    assert_eq!(inner.field("depth"), Some("1"));

    // The profiler renders the same hierarchy.
    let tree = obs::render_span_tree(&records);
    assert!(tree.contains("it.outer k=v"), "{tree}");
    assert!(tree.contains("  it.inner"), "{tree}");
    assert!(tree.contains("    it.leaf"), "{tree}");
}

#[test]
fn concurrent_worker_spans_carry_trace_parentage() {
    let _guard = global_lock();
    obs::clear_subscribers();
    let collector = Arc::new(MemorySubscriber::new());
    obs::add_subscriber(collector.clone());

    // A coordinator enters a trace, opens a root span, and hands the
    // resulting context to pool workers; every worker-side span must
    // land under the root with the root's trace id, with no record
    // corruption under contention.
    let tc = obs::TraceContext::new();
    let root_id;
    {
        let _trace = tc.enter();
        let root = obs::span("it.root");
        root_id = root.id().expect("subscriber installed, span is live");
        let ctx = obs::TraceContext::current();
        let pool = WorkerPool::new(4);
        pool.parallel_map((0..512u64).collect(), |i| {
            let _scope = ctx.enter();
            let mut s = obs::span("it.worker");
            s.field("i", i);
        });
    }
    obs::clear_subscribers();

    let records = collector.records();
    let workers: Vec<_> = records.iter().filter(|r| r.name == "it.worker").collect();
    assert_eq!(workers.len(), 512, "one span per work item");
    let root = records.iter().find(|r| r.name == "it.root").expect("root span recorded");
    assert_eq!(root.id, root_id);
    assert_eq!(root.parent, None);
    for w in &workers {
        assert_eq!(w.parent, Some(root_id), "worker span parented under the root");
        assert_eq!(w.trace_id, tc.trace_id, "worker span joined the coordinator's trace");
        assert!(w.field("i").is_some(), "fields survive concurrent recording");
    }
    // Ids are unique — concurrent allocation never reused one.
    let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), records.len(), "span ids are unique across threads");
}

#[test]
fn memory_subscriber_ring_drops_oldest_under_pool_load() {
    let _guard = global_lock();
    obs::clear_subscribers();
    let collector = Arc::new(MemorySubscriber::with_capacity(64));
    obs::add_subscriber(collector.clone());

    let pool = WorkerPool::new(4);
    pool.parallel_map((0..1_000u64).collect(), |_| {
        let _s = obs::span("it.flood");
    });
    obs::clear_subscribers();

    assert_eq!(collector.records().len(), 64, "ring holds exactly its capacity");
    assert_eq!(collector.dropped(), 1_000 - 64, "every eviction is counted");
}

#[test]
fn disabled_registry_skips_engine_metrics() {
    let _guard = global_lock();
    let reg = obs::global();
    let jobs = reg.counter("nggc_pool_jobs_total");
    reg.set_enabled(false);
    let before = jobs.get();
    let pool = WorkerPool::new(2);
    pool.parallel_map((0..64).collect::<Vec<u64>>(), |i| i * 2);
    assert_eq!(jobs.get(), before, "disabled registry must ignore pool traffic");
    // Pool-local stats still work — they are not registry-gated.
    assert_eq!(pool.stats().jobs_executed, 64);
    reg.set_enabled(true);
}
