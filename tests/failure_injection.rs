//! Failure injection: corrupted files, truncated payloads, failing
//! providers — the system must degrade with errors, never panics or
//! silent corruption.

use nggc::federation::decode_staged;
use nggc::formats::native;
use nggc::gdm::{Attribute, Dataset, GRegion, Sample, Schema, Strand, ValueType};
use nggc::gmql::{run_with_provider, ExecOptions, GmqlError};
use nggc::repository::Repository;
use std::fs;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nggc_fail_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn corrupt_native_schema_is_an_error() {
    let dir = tmp("schema");
    let ds_dir = dir.join("D");
    fs::create_dir_all(ds_dir.join("files")).unwrap();
    fs::write(ds_dir.join("schema.gdm"), "p_value\tnot_a_type\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());

    fs::write(ds_dir.join("schema.gdm"), "no_tab_here\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_native_region_rows_are_errors_with_line_numbers() {
    let dir = tmp("rows");
    let ds_dir = dir.join("D");
    fs::create_dir_all(ds_dir.join("files")).unwrap();
    fs::write(ds_dir.join("schema.gdm"), "score\tfloat\n").unwrap();
    // Wrong arity on line 2.
    fs::write(ds_dir.join("files/s.gdm"), "chr1\t0\t10\t+\t1.5\nchr1\t20\t30\t+\n").unwrap();
    let err = native::read_dataset(&ds_dir).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    // Garbage coordinates.
    fs::write(ds_dir.join("files/s.gdm"), "chr1\tzero\t10\t+\t1.5\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());

    // Bad strand.
    fs::write(ds_dir.join("files/s.gdm"), "chr1\t0\t10\tx\t1.5\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_schema_file_is_an_io_error() {
    let dir = tmp("noschema");
    let ds_dir = dir.join("D");
    fs::create_dir_all(ds_dir.join("files")).unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_repository_catalog_fails_open() {
    let dir = tmp("catalog");
    fs::write(dir.join("catalog.json"), "{ not json").unwrap();
    assert!(Repository::open(&dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn repository_survives_deleted_dataset_directory() {
    let dir = tmp("ghost");
    let mut repo = Repository::open(&dir).unwrap();
    let schema = Schema::new(vec![Attribute::new("x", ValueType::Int)]).unwrap();
    let mut ds = Dataset::new("D", schema);
    ds.add_sample(Sample::new("s", "D").with_regions(vec![
        GRegion::new("chr1", 0, 5, Strand::Pos).with_values(vec![1i64.into()]),
    ]))
    .unwrap();
    repo.save(&ds).unwrap();
    // Someone deletes the files behind the catalog's back. The warm
    // in-process cache (populated by save) still serves the dataset…
    fs::remove_dir_all(dir.join("datasets").join("D")).unwrap();
    assert!(repo.load("D").is_ok(), "warm cache outlives the on-disk copy");
    // …but a fresh open has a cold cache and reports the loss.
    let cold = Repository::open(&dir).unwrap();
    assert!(cold.load("D").is_err(), "load reports the loss instead of panicking");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_federation_payload_rejected() {
    // A valid frame followed by garbage truncations.
    let ds = Dataset::new("X", Schema::empty());
    let body = serde_json::to_vec(&ds).unwrap();
    let mut payload = Vec::new();
    payload.extend(1u64.to_le_bytes()); // name length
    payload.extend(b"X");
    payload.extend((body.len() as u64).to_le_bytes());
    payload.extend(&body);
    assert_eq!(decode_staged(&payload).unwrap().len(), 1);

    // Truncate mid-body.
    assert!(decode_staged(&payload[..payload.len() - 3]).is_err());
    // Truncate mid-header.
    assert!(decode_staged(&payload[..4]).is_err());
    // Corrupt the JSON body.
    let mut corrupt = payload.clone();
    let n = corrupt.len();
    corrupt[n - 2] = b'!';
    assert!(decode_staged(&corrupt).is_err());
}

#[test]
fn failing_provider_aborts_query_cleanly() {
    let schema_of = |name: &str| -> Option<Schema> { (name == "D").then(Schema::empty) };
    let provider =
        |_: &str| -> Result<Dataset, GmqlError> { Err(GmqlError::runtime("disk on fire")) };
    let ctx = nggc::engine::ExecContext::with_workers(2);
    let err = run_with_provider(
        "X = SELECT(a == 1) D; MATERIALIZE X;",
        &schema_of,
        &provider,
        &ctx,
        &ExecOptions::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("disk on fire"));
}

#[test]
fn query_text_abuse_is_rejected_not_panicking() {
    let mut engine = nggc::gmql::GmqlEngine::with_workers(1);
    engine.register(Dataset::new("D", Schema::empty()));
    for bad in [
        "",
        ";;;",
        "X = ;",
        "X = SELECT( D;",
        "X = SELECT() D extra;",
        "X = JOIN(DLE()) D D;",
        "X = COVER(ANY) D;",
        "MATERIALIZE GHOST;",
        "X = MAP(n AS NOSUCHAGG) D D;",
        "X = SELECT(region: 1 +) D;",
        "X = PROJECT(zzz) D;",
        "♥ = SELECT() D;",
    ] {
        assert!(engine.run(bad).is_err(), "{bad:?} must be rejected");
    }
}
