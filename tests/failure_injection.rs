//! Failure injection: corrupted files, truncated payloads, failing
//! providers, and misbehaving federation peers — the system must
//! degrade with errors (or partial results plus a health report),
//! never panics, hangs, or silent corruption.

#[path = "common/watchdog.rs"]
mod watchdog;

use nggc::federation::{
    decode_staged, BreakerState, CallPolicy, ChaosConfig, ChaosNode, Federation, FederationError,
    FederationNode, NodeStatus, Request, TransferLog,
};
use nggc::formats::native;
use nggc::gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, ValueType};
use nggc::gmql::{run_with_provider, ExecOptions, GmqlError};
use nggc::repository::Repository;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use watchdog::with_watchdog;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nggc_fail_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn corrupt_native_schema_is_an_error() {
    let dir = tmp("schema");
    let ds_dir = dir.join("D");
    fs::create_dir_all(ds_dir.join("files")).unwrap();
    fs::write(ds_dir.join("schema.gdm"), "p_value\tnot_a_type\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());

    fs::write(ds_dir.join("schema.gdm"), "no_tab_here\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_native_region_rows_are_errors_with_line_numbers() {
    let dir = tmp("rows");
    let ds_dir = dir.join("D");
    fs::create_dir_all(ds_dir.join("files")).unwrap();
    fs::write(ds_dir.join("schema.gdm"), "score\tfloat\n").unwrap();
    // Wrong arity on line 2.
    fs::write(ds_dir.join("files/s.gdm"), "chr1\t0\t10\t+\t1.5\nchr1\t20\t30\t+\n").unwrap();
    let err = native::read_dataset(&ds_dir).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    // Garbage coordinates.
    fs::write(ds_dir.join("files/s.gdm"), "chr1\tzero\t10\t+\t1.5\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());

    // Bad strand.
    fs::write(ds_dir.join("files/s.gdm"), "chr1\t0\t10\tx\t1.5\n").unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_schema_file_is_an_io_error() {
    let dir = tmp("noschema");
    let ds_dir = dir.join("D");
    fs::create_dir_all(ds_dir.join("files")).unwrap();
    assert!(native::read_dataset(&ds_dir).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_repository_catalog_rebuilds_on_open() {
    // A torn catalog no longer fails open: recovery rebuilds it by
    // scanning the dataset directories (docs/robustness.md). With no
    // datasets on disk the rebuilt catalog is simply empty, and the
    // repair is reported via health and persisted for the next open.
    let dir = tmp("catalog");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("catalog.json"), "{ not json").unwrap();
    let repo = Repository::open(&dir).unwrap();
    assert!(repo.health().catalog_rebuilt);
    assert!(repo.list().is_empty());
    let again = Repository::open(&dir).unwrap();
    assert!(!again.health().catalog_rebuilt, "repair is persisted, second open is clean");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn repository_survives_deleted_dataset_directory() {
    let dir = tmp("ghost");
    let mut repo = Repository::open(&dir).unwrap();
    let schema = Schema::new(vec![Attribute::new("x", ValueType::Int)]).unwrap();
    let mut ds = Dataset::new("D", schema);
    ds.add_sample(Sample::new("s", "D").with_regions(vec![
        GRegion::new("chr1", 0, 5, Strand::Pos).with_values(vec![1i64.into()]),
    ]))
    .unwrap();
    repo.save(&ds).unwrap();
    // Someone deletes the files behind the catalog's back. The warm
    // in-process cache (populated by save) still serves the dataset…
    fs::remove_dir_all(dir.join("datasets").join("D")).unwrap();
    assert!(repo.load("D").is_ok(), "warm cache outlives the on-disk copy");
    // …but a fresh open has a cold cache and reports the loss.
    let cold = Repository::open(&dir).unwrap();
    assert!(cold.load("D").is_err(), "load reports the loss instead of panicking");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_federation_payload_rejected() {
    // A valid frame followed by garbage truncations.
    let ds = Dataset::new("X", Schema::empty());
    let body = serde_json::to_vec(&ds).unwrap();
    let mut payload = Vec::new();
    payload.extend(1u64.to_le_bytes()); // name length
    payload.extend(b"X");
    payload.extend((body.len() as u64).to_le_bytes());
    payload.extend(&body);
    assert_eq!(decode_staged(&payload).unwrap().len(), 1);

    // Truncate mid-body.
    assert!(decode_staged(&payload[..payload.len() - 3]).is_err());
    // Truncate mid-header.
    assert!(decode_staged(&payload[..4]).is_err());
    // Corrupt the JSON body.
    let mut corrupt = payload.clone();
    let n = corrupt.len();
    corrupt[n - 2] = b'!';
    assert!(decode_staged(&corrupt).is_err());
}

#[test]
fn failing_provider_aborts_query_cleanly() {
    let schema_of = |name: &str| -> Option<Schema> { (name == "D").then(Schema::empty) };
    let provider =
        |_: &str| -> Result<Dataset, GmqlError> { Err(GmqlError::runtime("disk on fire")) };
    let ctx = nggc::engine::ExecContext::with_workers(2);
    let err = run_with_provider(
        "X = SELECT(a == 1) D; MATERIALIZE X;",
        &schema_of,
        &provider,
        &ctx,
        &ExecOptions::default(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("disk on fire"));
}

// ---------------------------------------------------------------------
// ChaosNode scenarios: deadlines, retries, breakers, degraded modes.
// Every test runs under a watchdog so a reintroduced blocking recv()
// fails the suite instead of wedging it, and every test uses unique
// node ids so the global per-node metric labels stay isolated.
// ---------------------------------------------------------------------

/// A small dataset a federation node can own and answer queries over.
fn fed_dataset(name: &str, samples: usize, regions_per_sample: usize) -> Dataset {
    let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
    let mut ds = Dataset::new(name, schema);
    for i in 0..samples {
        let regions = (0..regions_per_sample)
            .map(|j| {
                GRegion::new("chr1", (j * 500) as u64, (j * 500 + 100) as u64, Strand::Unstranded)
                    .with_values(vec![0.01.into()])
            })
            .collect();
        ds.add_sample(
            Sample::new(format!("s{i}"), name)
                .with_regions(regions)
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
    }
    ds
}

/// Millisecond-scale policy so fault scenarios finish fast.
fn fast_policy() -> CallPolicy {
    CallPolicy {
        deadline: Duration::from_millis(50),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        jitter_seed: 1,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(150),
    }
}

#[test]
fn hung_node_hits_the_deadline_not_forever() {
    with_watchdog("hung_node_deadline", 60, || {
        let mut fed = Federation::with_policy(CallPolicy {
            max_retries: 0,
            deadline: Duration::from_millis(30),
            ..fast_policy()
        });
        let mut node = FederationNode::new("hung-deadline", 1);
        node.own(fed_dataset("HUNGD", 1, 4));
        fed.add_node(ChaosNode::new(node, ChaosConfig::hung(Duration::from_millis(250))));
        let t0 = Instant::now();
        let mut log = TransferLog::default();
        let err = fed.call("hung-deadline", Request::ListDatasets, &mut log).unwrap_err();
        assert!(matches!(err, FederationError::Timeout(_)), "{err}");
        assert!(t0.elapsed() < Duration::from_secs(5), "deadline bounded the wait");
    });
}

#[test]
fn flaky_node_succeeds_within_the_retry_budget() {
    with_watchdog("flaky_retry_budget", 60, || {
        let reg = nggc::obs::global();
        let retries_before =
            reg.counter_with("nggc_fed_retries_total", &[("node", "flaky-retry")]).get();
        let mut fed = Federation::with_policy(CallPolicy { max_retries: 3, ..fast_policy() });
        let mut node = FederationNode::new("flaky-retry", 1);
        node.own(fed_dataset("FLAKY", 2, 4));
        // The first two responses are lost; the third attempt lands.
        fed.add_node(ChaosNode::new(node, ChaosConfig::flaky(2)));
        let mut log = TransferLog::default();
        let inventory = fed.discover(&mut log).unwrap();
        assert_eq!(inventory.len(), 1);
        assert_eq!(inventory[0].1[0].name, "FLAKY");
        let retries = reg.counter_with("nggc_fed_retries_total", &[("node", "flaky-retry")]).get()
            - retries_before;
        assert!(retries >= 2, "two lost responses cost two retries, saw {retries}");
    });
}

#[test]
fn breaker_opens_after_repeated_failures_and_recovers_half_open() {
    with_watchdog("breaker_lifecycle", 60, || {
        let policy =
            CallPolicy { max_retries: 0, deadline: Duration::from_millis(30), ..fast_policy() };
        let cooldown = policy.breaker_cooldown;
        let mut fed = Federation::with_policy(policy);
        let mut node = FederationNode::new("breaker-node", 1);
        node.own(fed_dataset("BRK", 1, 4));
        // Exactly three lost responses, then the node behaves again.
        fed.add_node(ChaosNode::new(node, ChaosConfig::flaky(3)));
        let mut log = TransferLog::default();
        for _ in 0..3 {
            let err = fed.call("breaker-node", Request::ListDatasets, &mut log).unwrap_err();
            assert!(matches!(err, FederationError::Timeout(_)), "{err}");
        }
        assert_eq!(fed.breaker_state("breaker-node"), BreakerState::Open);
        // While open: rejected locally, without touching the node.
        let err = fed.call("breaker-node", Request::ListDatasets, &mut log).unwrap_err();
        assert!(matches!(err, FederationError::CircuitOpen(_)), "{err}");
        // After the cooldown a half-open probe goes through and, now that
        // the chaos window is exhausted, closes the breaker again.
        std::thread::sleep(cooldown + Duration::from_millis(50));
        let listed = fed.call("breaker-node", Request::ListDatasets, &mut log).unwrap();
        assert!(matches!(listed, nggc::federation::Response::Datasets(_)));
        assert_eq!(fed.breaker_state("breaker-node"), BreakerState::Closed);
    });
}

#[test]
fn discover_degraded_returns_partial_inventory_with_one_node_down() {
    with_watchdog("discover_degraded", 60, || {
        let mut fed = Federation::with_policy(CallPolicy {
            max_retries: 1,
            deadline: Duration::from_millis(30),
            ..fast_policy()
        });
        // The dead node comes first to prove discovery keeps going.
        fed.add_node(ChaosNode::new(
            FederationNode::new("part-dead", 1),
            ChaosConfig::unresponsive(),
        ));
        let mut alive = FederationNode::new("part-alive", 1);
        alive.own(fed_dataset("ALIVE", 2, 4));
        fed.add_node(alive);

        // Strict discovery fails on the dead node…
        let mut log = TransferLog::default();
        assert!(matches!(fed.discover(&mut log), Err(FederationError::Timeout(_))));
        // …degraded discovery returns the partial inventory plus health.
        let (inventory, health) = fed.discover_degraded(&mut log);
        assert_eq!(inventory.len(), 1);
        assert_eq!(inventory[0].0, "part-alive");
        assert_eq!(inventory[0].1[0].name, "ALIVE");
        assert_eq!(health.len(), 2);
        assert_eq!(health[0].node, "part-dead");
        assert_eq!(health[0].status, NodeStatus::Unavailable);
        assert!(health[0].error.as_deref().unwrap_or("").contains("timed out"));
        assert_eq!(health[1].node, "part-alive");
        assert_eq!(health[1].status, NodeStatus::Healthy);
    });
}

#[test]
fn ticket_released_after_midstream_chunk_failure() {
    with_watchdog("midstream_release", 60, || {
        let mut fed = Federation::with_policy(fast_policy());
        let mut node = FederationNode::new("midfail", 1);
        node.own(fed_dataset("MID", 3, 40));
        // Only chunk fetches fail (more than the retry budget absorbs);
        // Execute/Release/Status are untouched.
        fed.add_node(ChaosNode::new(
            node,
            ChaosConfig {
                fail_first: 8,
                only_kinds: vec!["FetchChunk".to_owned()],
                ..ChaosConfig::default()
            },
        ));
        let err = fed.ship_query("midfail", "X = SELECT() MID; MATERIALIZE X;", 1024).unwrap_err();
        assert!(matches!(err, FederationError::Remote(ref m) if m.contains("chaos")), "{err}");
        // The error path released the staged ticket: nothing leaks.
        assert_eq!(fed.staged_results("midfail").unwrap(), 0);
    });
}

#[test]
fn garbled_chunks_are_protocol_errors_and_release_the_ticket() {
    with_watchdog("garbled_chunks", 60, || {
        let mut fed = Federation::with_policy(fast_policy());
        let mut node = FederationNode::new("garbler", 1);
        node.own(fed_dataset("GARBLE", 3, 40));
        fed.add_node(ChaosNode::new(
            node,
            ChaosConfig {
                garble_rate: 1.0,
                only_kinds: vec!["FetchChunk".to_owned()],
                ..ChaosConfig::default()
            },
        ));
        let err =
            fed.ship_query("garbler", "X = SELECT() GARBLE; MATERIALIZE X;", 2048).unwrap_err();
        assert!(matches!(err, FederationError::Protocol(_)), "{err}");
        assert_eq!(fed.staged_results("garbler").unwrap(), 0);
    });
}

#[test]
fn upload_accounting_survives_query_failure() {
    with_watchdog("upload_accounting", 60, || {
        let reg = nggc::obs::global();
        let sent = || reg.counter_with("nggc_fed_bytes_sent_total", &[("node", "acct")]).get();
        let drops = || {
            reg.counter_with("nggc_fed_requests_total", &[("node", "acct"), ("kind", "DropUpload")])
                .get()
        };
        let (sent_before, drops_before) = (sent(), drops());

        let mut fed = Federation::with_policy(fast_policy());
        let mut node = FederationNode::new("acct", 1);
        node.own(fed_dataset("ACCT", 2, 4));
        fed.add_node(node);
        let mine = fed_dataset("MINE", 1, 8);
        // The query references a dataset that does not exist, so the
        // remote Execute fails after the upload went over the wire.
        let err = fed
            .ship_query_with_upload("acct", &mine, "R = SELECT() GHOST; MATERIALIZE R;", 4096)
            .unwrap_err();
        assert!(matches!(err, FederationError::Remote(_)), "{err}");

        let upload_size =
            Request::Upload { name: "MINE".to_owned(), data: serde_json::to_vec(&mine).unwrap() }
                .wire_size() as u64;
        assert!(
            sent() - sent_before >= upload_size,
            "failed conversation still accounts its sent bytes"
        );
        assert_eq!(drops() - drops_before, 1, "the private upload was dropped despite the error");
    });
}

/// The ISSUE acceptance scenario: one of three nodes is hung, another is
/// flaky. A federated query completes within the deadline budget,
/// returns degraded results with an accurate health report, and leaves
/// zero staged tickets on the surviving nodes.
#[test]
fn three_node_federation_degrades_gracefully() {
    with_watchdog("three_node_degraded", 120, || {
        let mut fed = Federation::with_policy(CallPolicy {
            deadline: Duration::from_millis(40),
            max_retries: 2,
            ..fast_policy()
        });
        // alpha: healthy, owns the big experiment dataset.
        let mut alpha = FederationNode::new("acc-alpha", 2);
        alpha.own(fed_dataset("AAA", 6, 60));
        fed.add_node(alpha);
        // bravo: flaky (loses its first response), owns the small one.
        let mut bravo = FederationNode::new("acc-bravo", 1);
        bravo.own(fed_dataset("BBB", 1, 3));
        fed.add_node(ChaosNode::new(bravo, ChaosConfig::flaky(1)));
        // hung: stalls on every request; owns nothing the query needs.
        let mut hung = FederationNode::new("acc-hung", 1);
        hung.own(fed_dataset("CCC", 1, 2));
        fed.add_node(ChaosNode::new(hung, ChaosConfig::hung(Duration::from_millis(150))));

        const Q: &str = "R = MAP(n AS COUNT) BBB AAA; MATERIALIZE R;";
        let t0 = Instant::now();
        let outcome = fed.execute_distributed_degraded(Q, 8192).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed < Duration::from_secs(10), "bounded by the deadline budget: {elapsed:?}");

        // Partial results: computed from the reachable majority, and
        // identical to a fully-local reference run.
        assert_eq!(outcome.plan.host, "acc-alpha");
        assert_eq!(outcome.plan.shipped, vec![("BBB".to_string(), "acc-bravo".to_string())]);
        let mut local = nggc::gmql::GmqlEngine::with_workers(2);
        local.register(fed_dataset("AAA", 6, 60));
        local.register(fed_dataset("BBB", 1, 3));
        let expected = local.run(Q).unwrap();
        assert_eq!(outcome.outputs["R"].sample_count(), expected["R"].sample_count());
        assert_eq!(outcome.outputs["R"].region_count(), expected["R"].region_count());

        // Accurate health report.
        assert!(!outcome.fully_healthy());
        assert_eq!(outcome.unavailable_nodes(), vec!["acc-hung"]);
        let by_node = |id: &str| outcome.health.iter().find(|h| h.node == id).unwrap();
        assert_eq!(by_node("acc-alpha").status, NodeStatus::Healthy);
        assert_eq!(by_node("acc-bravo").status, NodeStatus::Degraded);
        assert!(by_node("acc-bravo").retries >= 1);
        assert_eq!(by_node("acc-hung").status, NodeStatus::Unavailable);
        assert!(by_node("acc-hung").error.is_some());

        // Zero staged tickets on every surviving node.
        assert_eq!(fed.staged_results("acc-alpha").unwrap(), 0);
        assert_eq!(fed.staged_results("acc-bravo").unwrap(), 0);

        // The retry/timeout/breaker metrics observed the trouble.
        let reg = nggc::obs::global();
        assert!(reg.counter_with("nggc_fed_timeouts_total", &[("node", "acc-hung")]).get() >= 1);
        assert!(reg.counter_with("nggc_fed_retries_total", &[("node", "acc-bravo")]).get() >= 1);
        assert_eq!(fed.breaker_state("acc-hung"), BreakerState::Open);
    });
}

#[test]
fn query_text_abuse_is_rejected_not_panicking() {
    let mut engine = nggc::gmql::GmqlEngine::with_workers(1);
    engine.register(Dataset::new("D", Schema::empty()));
    for bad in [
        "",
        ";;;",
        "X = ;",
        "X = SELECT( D;",
        "X = SELECT() D extra;",
        "X = JOIN(DLE()) D D;",
        "X = COVER(ANY) D;",
        "MATERIALIZE GHOST;",
        "X = MAP(n AS NOSUCHAGG) D D;",
        "X = SELECT(region: 1 +) D;",
        "X = PROJECT(zzz) D;",
        "♥ = SELECT() D;",
    ] {
        assert!(engine.run(bad).is_err(), "{bad:?} must be rejected");
    }
}

// ---------------------------------------------------------------------
// Governor chaos: deadline mid-JOIN, budget rejection of an oversized
// intermediate, and cancellation during a federated conversation.
// Typed errors with partial progress, bounded wall time, no leaked
// staging tickets (ISSUE 4 satellite).
// ---------------------------------------------------------------------

use nggc::gmql::{run_with_provider_governed, GovernorLimits, QueryGovernor};

/// Dense single-chromosome dataset: every region is within DLE(1e6) of
/// every other, so a self-JOIN enumerates ~n² candidate pairs.
fn dense_dataset(regions: usize) -> Dataset {
    let mut ds = Dataset::new("D", Schema::empty());
    let rs = (0..regions)
        .map(|i| {
            let left = ((i as u64) * 137) % 1_000_000;
            GRegion::new("chr1", left, left + 400, Strand::Unstranded)
        })
        .collect();
    ds.add_sample(Sample::new("s", "D").with_regions(rs)).unwrap();
    ds
}

fn dense_schema(name: &str) -> Option<Schema> {
    (name == "D").then(Schema::empty)
}

#[test]
fn governor_deadline_trips_mid_join_with_partial_progress() {
    with_watchdog("governor_deadline_join", 120, || {
        let ds = dense_dataset(3000);
        let provider = move |_: &str| -> Result<Dataset, GmqlError> { Ok(ds.clone()) };
        let governor = QueryGovernor::new(GovernorLimits {
            timeout: Some(Duration::from_millis(150)),
            max_memory: None,
        });
        let ctx = nggc::engine::ExecContext::with_workers(2);
        let t0 = Instant::now();
        let err = run_with_provider_governed(
            "J = JOIN(DLE(1000000)) D D; MATERIALIZE J;",
            &dense_schema,
            &provider,
            &ctx,
            &ExecOptions::default(),
            &governor,
        )
        .unwrap_err();
        // Un-governed, this join enumerates ~9M pairs (tens of seconds in
        // a debug build); the cooperative checkpoints must stop it within
        // a small multiple of the deadline.
        assert!(t0.elapsed() < Duration::from_secs(30), "kernel checkpoints bound the overrun");
        match err {
            GmqlError::DeadlineExceeded { ref node, elapsed_ms, limit_ms, .. } => {
                assert_eq!(node, "J", "the join node is named in the report");
                assert_eq!(limit_ms, 150);
                assert!(elapsed_ms >= 150, "elapsed covers at least the limit");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    });
}

#[test]
fn governor_budget_rejects_oversized_intermediate() {
    with_watchdog("governor_budget_join", 120, || {
        let ds = dense_dataset(400);
        let provider = move |_: &str| -> Result<Dataset, GmqlError> { Ok(ds.clone()) };
        let budget = 256 * 1024;
        let governor =
            QueryGovernor::new(GovernorLimits { timeout: None, max_memory: Some(budget) });
        let ctx = nggc::engine::ExecContext::with_workers(2);
        let err = run_with_provider_governed(
            "J = JOIN(DLE(1000000)) D D; MATERIALIZE J;",
            &dense_schema,
            &provider,
            &ctx,
            &ExecOptions::default(),
            &governor,
        )
        .unwrap_err();
        match err {
            GmqlError::MemoryExhausted { ref node, requested, budget: b, charged } => {
                assert_eq!(node, "J", "the oversized intermediate is the join output");
                assert_eq!(b, budget);
                assert!(requested > budget, "join output exceeds the whole budget: {requested}");
                assert!(charged <= budget, "accepted charges never exceed the budget");
            }
            other => panic!("expected MemoryExhausted, got {other:?}"),
        }
        // The trip was counted and the peak gauge exported.
        let reg = nggc::obs::global();
        assert!(reg.counter("nggc_query_mem_rejections_total").get() >= 1);
    });
}

#[test]
fn cancel_during_federated_query_releases_staged_ticket() {
    with_watchdog("governor_fed_cancel", 120, || {
        let mut fed = Federation::with_policy(fast_policy());
        let mut node = FederationNode::new("gov-cancel", 1);
        node.own(fed_dataset("GOVC", 3, 40));
        // Every chunk fetch stalls 25 ms (within the per-call deadline),
        // stretching the streaming phase so the cancel lands mid-stream.
        fed.add_node(ChaosNode::new(
            node,
            ChaosConfig {
                delay_rate: 1.0,
                delay: Duration::from_millis(25),
                only_kinds: vec!["FetchChunk".to_owned()],
                ..ChaosConfig::default()
            },
        ));
        let governor = QueryGovernor::unbounded();
        // Ctrl-C equivalent: an external cancel shortly after the
        // conversation starts — Execute has staged a ticket by then.
        let token = governor.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            token.cancel();
        });
        let err = fed
            .ship_query_governed("gov-cancel", "X = SELECT() GOVC; MATERIALIZE X;", 512, &governor)
            .unwrap_err();
        canceller.join().unwrap();
        match err {
            FederationError::Interrupted(ref msg) => {
                assert!(msg.contains("cancelled"), "{msg}");
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
        // The interrupted conversation still released its staged ticket.
        assert_eq!(fed.staged_results("gov-cancel").unwrap(), 0);
    });
}
