//! Per-test hang guard for the federation suites.
//!
//! A reintroduced blocking `recv()` (or any other wedge) must fail CI,
//! not hang it: the workflow has `timeout-minutes`, and this watchdog is
//! the per-test layer — it runs the test body on a worker thread and
//! aborts the whole test process with a diagnostic if the body exceeds
//! its budget.

use std::sync::mpsc;
use std::time::Duration;

/// Run `f`, aborting the test process if it takes longer than `secs`.
pub fn with_watchdog<T: Send + 'static>(
    label: &'static str,
    secs: u64,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let out = f();
            let _ = done_tx.send(());
            out
        })
        .expect("spawn watchdog worker");
    match done_rx.recv_timeout(Duration::from_secs(secs)) {
        // Finished (the sender is dropped on panic too): join and
        // propagate the worker's result or panic.
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => match worker.join() {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            eprintln!("watchdog: test {label:?} exceeded its {secs}s budget — aborting process");
            std::process::abort();
        }
    }
}
