//! Acceptance test for the query resource governor (ISSUE 4): a
//! deliberately pathological cartesian-heavy JOIN under
//! `--timeout 500ms --max-memory 64MiB`-equivalent limits terminates
//! promptly with a typed error naming the plan node and the resources
//! spent — and the **same process** then serves the next query from the
//! warm repository cache, proving a runaway query no longer takes the
//! engine (or its caches) down with it.

#[path = "common/watchdog.rs"]
mod watchdog;

use nggc::gdm::{Dataset, GRegion, Sample, Schema, Strand};
use nggc::gmql::{
    run_with_provider_governed, ExecOptions, GmqlError, GovernorLimits, QueryGovernor,
};
use nggc::repository::Repository;
use nggc::RepoProvider;
use std::time::{Duration, Instant};
use watchdog::with_watchdog;

/// 5000 dense regions on one chromosome: a DLE(1e6) self-join
/// enumerates ~25M candidate pairs — many seconds of kernel time and
/// hundreds of MB of output if left unbounded.
fn big_dataset() -> Dataset {
    let mut ds = Dataset::new("BIG", Schema::empty());
    let regions = (0..5000u64)
        .map(|i| {
            let left = (i * 137) % 1_000_000;
            GRegion::new("chr1", left, left + 500, Strand::Unstranded)
        })
        .collect();
    ds.add_sample(Sample::new("s", "BIG").with_regions(regions)).unwrap();
    ds
}

#[test]
fn pathological_join_trips_governor_then_process_serves_from_warm_cache() {
    with_watchdog("governor_acceptance", 180, || {
        let dir = std::env::temp_dir().join(format!("nggc_gov_accept_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut repo = Repository::open(&dir).unwrap();
        repo.save(&big_dataset()).unwrap();

        let limits = GovernorLimits {
            timeout: Some(Duration::from_millis(500)),
            max_memory: Some(64 * 1024 * 1024),
        };
        let schema_of = |name: &str| repo.schema_of(name);
        let ctx = nggc::engine::ExecContext::with_workers(2);

        // Query 1: the pathological join. Typed resource-limit error,
        // naming the plan node, with the spend in the report.
        let governor = QueryGovernor::new(limits);
        let t0 = Instant::now();
        let err = run_with_provider_governed(
            "J = JOIN(DLE(1000000)) BIG BIG; MATERIALIZE J;",
            &schema_of,
            &RepoProvider::governed(&repo, &governor),
            &ctx,
            &ExecOptions::default(),
            &governor,
        )
        .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(60),
            "prompt termination, not a 25M-pair run: {elapsed:?}"
        );
        match err {
            GmqlError::DeadlineExceeded { ref node, elapsed_ms, limit_ms, .. } => {
                assert_eq!(node, "J");
                assert_eq!(limit_ms, 500);
                assert!(elapsed_ms >= 500);
            }
            GmqlError::MemoryExhausted { ref node, requested, budget, .. } => {
                assert_eq!(node, "J");
                assert!(requested > budget);
            }
            ref other => panic!("expected a resource-limit error, got {other:?}"),
        }
        assert!(err.is_resource_limit());
        assert!(governor.mem_peak() > 0, "partial progress includes governed memory spend");

        // Query 2, same process, same limits: a sane query over the same
        // source succeeds — served from the repository cache warmed by
        // the failed run.
        let reg = nggc::obs::global();
        let hits_before = reg.counter("nggc_repo_cache_hits_total").get();
        let governor2 = QueryGovernor::new(limits);
        let (outputs, _metrics) = run_with_provider_governed(
            "X = SELECT(region: left < 1000) BIG; MATERIALIZE X;",
            &schema_of,
            &RepoProvider::governed(&repo, &governor2),
            &ctx,
            &ExecOptions::default(),
            &governor2,
        )
        .unwrap();
        assert!(outputs["X"].region_count() > 0);
        assert!(
            reg.counter("nggc_repo_cache_hits_total").get() > hits_before,
            "second query hit the cache the failed query warmed"
        );

        // The trip metrics recorded the incident.
        let tripped = reg.counter("nggc_query_deadline_exceeded_total").get()
            + reg.counter("nggc_query_mem_rejections_total").get();
        assert!(tripped >= 1, "the governor trip was counted");

        std::fs::remove_dir_all(&dir).ok();
    });
}

#[test]
fn cancelled_query_reports_partial_progress_and_engine_survives() {
    with_watchdog("governor_cancel_survives", 180, || {
        let ds = big_dataset();
        let provider = move |_: &str| -> Result<Dataset, GmqlError> { Ok(ds.clone()) };
        let schema_of = |name: &str| (name == "BIG").then(Schema::empty);
        let ctx = nggc::engine::ExecContext::with_workers(2);

        // Ctrl-C equivalent: cancel from another thread mid-join.
        let governor = QueryGovernor::unbounded();
        let token = governor.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            token.cancel();
        });
        let err = run_with_provider_governed(
            "J = JOIN(DLE(1000000)) BIG BIG; MATERIALIZE J;",
            &schema_of,
            &provider,
            &ctx,
            &ExecOptions::default(),
            &governor,
        )
        .unwrap_err();
        canceller.join().unwrap();
        match err {
            GmqlError::Cancelled { ref node, elapsed_ms, .. } => {
                assert!(!node.is_empty(), "the interrupted node is named");
                assert!(elapsed_ms >= 150, "elapsed time is reported");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }

        // The same ExecContext still executes follow-up work: the cancel
        // poisoned the governor, not the engine.
        let ds2 = big_dataset();
        let provider2 = move |_: &str| -> Result<Dataset, GmqlError> { Ok(ds2.clone()) };
        let governor2 = QueryGovernor::unbounded();
        let (outputs, _) = run_with_provider_governed(
            "X = SELECT(region: left < 1000) BIG; MATERIALIZE X;",
            &schema_of,
            &provider2,
            &ctx,
            &ExecOptions::default(),
            &governor2,
        )
        .unwrap();
        assert!(outputs["X"].region_count() > 0);
    });
}
