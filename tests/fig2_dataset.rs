//! Experiment E2: the paper's Figure 2 GDM instance, reproduced exactly.
//!
//! Figure 2 shows the PEAKS dataset for ChIP-seq data: two samples whose
//! regions fall within two chromosomes, variable schema = `p_value`,
//! sample 1 stranded with karyotype "cancer", sample 2 unstranded from a
//! "female" donor; 5 + 4 regions and 4 + 3 metadata attributes.

use nggc::formats::native;
use nggc::gdm::*;

fn figure2_dataset() -> Dataset {
    let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
    let mut peaks = Dataset::new("PEAKS", schema);
    peaks
        .add_sample(
            Sample::new("sample_1", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 2940, 3400, Strand::Pos).with_values(vec![0.0001.into()]),
                    GRegion::new("chr1", 6120, 7030, Strand::Neg).with_values(vec![0.00005.into()]),
                    GRegion::new("chr1", 9140, 10400, Strand::Pos).with_values(vec![0.0003.into()]),
                    GRegion::new("chr2", 120, 680, Strand::Pos).with_values(vec![0.00002.into()]),
                    GRegion::new("chr2", 830, 1070, Strand::Neg).with_values(vec![0.0007.into()]),
                ])
                .with_metadata(Metadata::from_pairs([
                    ("antibody_target", "CTCF"),
                    ("karyotype", "cancer"),
                    ("organism", "Homo sapiens"),
                    ("dataType", "ChipSeq"),
                ])),
        )
        .unwrap();
    peaks
        .add_sample(
            Sample::new("sample_2", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 886, 1456, Strand::Unstranded)
                        .with_values(vec![0.0004.into()]),
                    GRegion::new("chr1", 1860, 2430, Strand::Unstranded)
                        .with_values(vec![0.0001.into()]),
                    GRegion::new("chr2", 400, 960, Strand::Unstranded)
                        .with_values(vec![0.0005.into()]),
                    GRegion::new("chr2", 1800, 2400, Strand::Unstranded)
                        .with_values(vec![0.00006.into()]),
                ])
                .with_metadata(Metadata::from_pairs([
                    ("antibody_target", "CTCF"),
                    ("sex", "female"),
                    ("dataType", "ChipSeq"),
                ])),
        )
        .unwrap();
    peaks
}

#[test]
fn figure2_cardinalities_match_the_paper() {
    let ds = figure2_dataset();
    ds.validate().unwrap();
    assert_eq!(ds.sample_count(), 2);
    // "sample 1 has 5 regions and 4 metadata attributes, sample 2 has 4
    // regions and 3 metadata attributes".
    assert_eq!(ds.samples[0].region_count(), 5);
    assert_eq!(ds.samples[0].metadata.len(), 4);
    assert_eq!(ds.samples[1].region_count(), 4);
    assert_eq!(ds.samples[1].metadata.len(), 3);
    // "regions of the first sample are stranded ... the second are not".
    assert!(ds.samples[0].regions.iter().all(|r| r.strand != Strand::Unstranded));
    assert!(ds.samples[1].regions.iter().all(|r| r.strand == Strand::Unstranded));
    // "sample 1 has karyotype 'cancer' and sample 2 was taken from a
    // 'female'".
    assert!(ds.samples[0].metadata.has("karyotype", "cancer"));
    assert!(ds.samples[1].metadata.has("sex", "female"));
    // Regions fall within two chromosomes.
    assert_eq!(ds.samples[0].chromosomes().len(), 2);
    assert_eq!(ds.samples[1].chromosomes().len(), 2);
}

#[test]
fn figure2_roundtrips_through_native_format() {
    let ds = figure2_dataset();
    let dir = std::env::temp_dir().join(format!("nggc_fig2_{}", std::process::id()));
    let dsdir = dir.join("PEAKS");
    native::write_dataset(&ds, &dsdir).unwrap();
    let back = native::read_dataset(&dsdir).unwrap();
    assert_eq!(back.schema, ds.schema);
    assert_eq!(back.sample_count(), 2);
    for (orig, reloaded) in
        [("sample_1", 0), ("sample_2", 1)].map(|(n, i)| (&ds.samples[i], back.sample_by_name(n)))
    {
        let reloaded = reloaded.unwrap();
        assert_eq!(reloaded.regions, orig.regions);
        assert_eq!(reloaded.metadata, orig.metadata);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figure2_sample_id_connects_regions_and_metadata() {
    let ds = figure2_dataset();
    // The sample ID provides the many-to-many connection (paper §2):
    // both views of a sample are reachable through the same id.
    let s1 = ds.samples[0].id;
    let fetched = ds.sample(s1).unwrap();
    assert_eq!(fetched.region_count(), 5);
    assert!(fetched.metadata.has("karyotype", "cancer"));
    assert_ne!(ds.samples[0].id, ds.samples[1].id);
}

#[test]
fn schema_merging_makes_heterogeneous_data_interoperable() {
    // "schema merging ... allows merging datasets with different schemas"
    // — merge the Figure-2 peaks with a mutation dataset.
    let peaks = figure2_dataset();
    let mut_schema = Schema::new(vec![
        Attribute::new("ref", ValueType::Str),
        Attribute::new("alt", ValueType::Str),
    ])
    .unwrap();
    let merged = peaks.schema.merge(&mut_schema);
    let names: Vec<&str> = merged.schema.attributes().iter().map(|a| a.name.as_str()).collect();
    assert_eq!(names, vec!["p_value", "ref", "alt"]);
    // A peaks row re-shapes with nulls in the mutation columns.
    let row = Schema::reshape_row(
        &peaks.samples[0].regions[0].values,
        &merged.left_map,
        merged.schema.len(),
    );
    assert_eq!(row, vec![Value::Float(0.0001), Value::Null, Value::Null]);
}
