//! Crash-injection proof of the storage layer's durability protocol.
//!
//! For every registered crashpoint (`nggc::repository::CRASH_SITES`)
//! and every hit count until the site stops firing, a real `nggc`
//! binary is killed mid-mutation (`import`, `migrate`, `delete`) via
//! `NGGC_CRASHPOINT=<site>:<n>`. After each kill the harness asserts
//! the recovery contract:
//!
//! 1. `nggc fsck --repair` succeeds,
//! 2. a plain `nggc fsck` then finds nothing (exit 0),
//! 3. the dataset equals **exactly** the pre-mutation or post-mutation
//!    version — never a blend of the two.

use nggc::repository::{Repository, StorageVersion, CRASHPOINT_ENV, CRASH_SITES};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn nggc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nggc"))
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nggc_crash_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap().filter_map(|e| e.ok()) {
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Run the binary with a crashpoint armed. Returns `true` when the
/// process aborted (the site fired), `false` when it completed.
fn run_armed(repo: &Path, site: &str, n: u64, args: &[&str]) -> bool {
    let out = nggc()
        .arg("--repo")
        .arg(repo)
        .args(args)
        .env(CRASHPOINT_ENV, format!("{site}:{n}"))
        .output()
        .expect("binary runs");
    !out.status.success()
}

/// Run the binary with no crashpoint in the environment; returns
/// (success, stdout, stderr).
fn run_clean(repo: &Path, args: &[&str]) -> (bool, String, String) {
    let out = nggc()
        .arg("--repo")
        .arg(repo)
        .args(args)
        .env_remove(CRASHPOINT_ENV)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Sample count and total region count of `DS`, or `None` when absent.
fn observe(repo: &Path) -> Option<(usize, usize)> {
    let r = Repository::open(repo).ok()?;
    if !r.contains("DS") {
        return None;
    }
    let ds = r.load("DS").ok()?;
    Some((ds.samples.len(), ds.samples.iter().map(|s| s.region_count()).sum()))
}

/// After a kill: repair, verify clean, and return the observed state.
fn recover(repo: &Path, context: &str) -> Option<(usize, usize)> {
    let (ok, stdout, stderr) = run_clean(repo, &["fsck", "--repair"]);
    assert!(ok, "[{context}] fsck --repair failed:\n{stdout}\n{stderr}");
    let (ok, stdout, stderr) = run_clean(repo, &["fsck"]);
    assert!(ok, "[{context}] repo not clean after repair:\n{stdout}\n{stderr}");
    observe(repo)
}

/// Drive `args` through every (site, hit) pair. `base` is copied fresh
/// for each run; `pre`/`post` are the only two states the repository
/// may be in after recovery.
fn crash_matrix(
    tag: &str,
    base: &Path,
    args: &[&str],
    pre: Option<(usize, usize)>,
    post: Option<(usize, usize)>,
) {
    let mut fired_total = 0;
    for site in CRASH_SITES {
        for n in 1..=4u64 {
            let repo = tmp(&format!("{tag}_{}_{n}", site.replace('.', "_")));
            copy_dir(base, &repo);
            let aborted = run_armed(&repo, site, n, args);
            if !aborted {
                // The n-th hit never happened: the command completed.
                // Its effects must equal the post state exactly.
                let context = format!("{tag} {site}:{n} completed");
                assert_eq!(observe(&repo), post, "[{context}]");
                fs::remove_dir_all(&repo).ok();
                break;
            }
            fired_total += 1;
            let context = format!("{tag} {site}:{n} aborted");
            let got = recover(&repo, &context);
            assert!(
                got == pre || got == post,
                "[{context}] recovered state {got:?} is neither pre {pre:?} nor post {post:?}"
            );
            fs::remove_dir_all(&repo).ok();
        }
    }
    assert!(fired_total > 0, "{tag}: no crashpoint ever fired — matrix is vacuous");
}

/// Base repository: dataset DS with one sample of three regions,
/// imported through the real binary.
fn seed_base(tag: &str) -> PathBuf {
    let base = tmp(&format!("{tag}_base"));
    let bed = base.join("first.bed");
    fs::write(&bed, "chr1\t100\t200\tp1\t5\t+\nchr1\t400\t500\tp2\t9\t-\nchr2\t0\t50\tp3\t2\t+\n")
        .unwrap();
    let repo = base.join("repo");
    let (ok, stdout, stderr) = run_clean(&repo, &["import", bed.to_str().unwrap(), "DS"]);
    assert!(ok, "seed import failed:\n{stdout}\n{stderr}");
    base
}

#[test]
fn import_killed_at_every_crashpoint_recovers_to_pre_or_post() {
    let base = seed_base("imp");
    let second = base.join("second.bed");
    fs::write(&second, "chr3\t10\t60\tq1\t1\t+\nchr3\t70\t90\tq2\t4\t-\n").unwrap();
    // Import appends a second sample: pre = (1 sample, 3 regions),
    // post = (2 samples, 5 regions).
    crash_matrix(
        "import",
        &base.join("repo"),
        &["import", second.to_str().unwrap(), "DS"],
        Some((1, 3)),
        Some((2, 5)),
    );
    fs::remove_dir_all(&base).ok();
}

#[test]
fn migrate_killed_at_every_crashpoint_recovers_to_pre_or_post() {
    let base = tmp("mig_base");
    let repo_dir = base.join("repo");
    {
        // A v1 (text) dataset, written through the library so `migrate`
        // has real work to do.
        let mut repo = Repository::open(&repo_dir).unwrap();
        let ds = {
            use nggc::gdm::{Attribute, Dataset, GRegion, Sample, Schema, Strand, ValueType};
            let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
            let mut ds = Dataset::new("DS", schema);
            let regions: Vec<GRegion> = (0..3)
                .map(|i| {
                    GRegion::new("chr1", i * 100, i * 100 + 50, Strand::Pos)
                        .with_values(vec![(i as f64).into()])
                })
                .collect();
            ds.add_sample(Sample::new("s1", "DS").with_regions(regions)).unwrap();
            ds
        };
        repo.save_with_version(&ds, StorageVersion::V1).unwrap();
    }
    // Migration rewrites in place: pre and post carry identical logical
    // content, so blend detection rides on fsck + load succeeding (a
    // half-written container fails its checksum pass).
    crash_matrix("migrate", &repo_dir, &["migrate", "DS"], Some((1, 3)), Some((1, 3)));
    // Also assert deep fsck passes on a surviving migrated copy.
    let repo = tmp("mig_post");
    copy_dir(&repo_dir, &repo);
    let (ok, stdout, stderr) = run_clean(&repo, &["migrate", "DS"]);
    assert!(ok, "clean migrate failed:\n{stdout}\n{stderr}");
    let (ok, stdout, stderr) = run_clean(&repo, &["fsck", "--deep"]);
    assert!(ok, "deep fsck after migrate failed:\n{stdout}\n{stderr}");
    fs::remove_dir_all(&repo).ok();
    fs::remove_dir_all(&base).ok();
}

#[test]
fn delete_killed_at_every_crashpoint_leaves_dataset_whole_or_gone() {
    let base = seed_base("del");
    // pre = dataset intact, post = dataset gone.
    crash_matrix("delete", &base.join("repo"), &["delete", "DS"], Some((1, 3)), None);
    fs::remove_dir_all(&base).ok();
}
