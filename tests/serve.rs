//! Acceptance tests for `nggc serve` — the concurrent multi-client
//! query service (docs/serving.md).
//!
//! Covers the ISSUE-7 acceptance criteria: ≥8 concurrent clients
//! through admission, typed retry-after rejection above the in-flight
//! cap, per-query governor budgets carved from the server-wide pool
//! (one client trips its budget while the rest succeed), concurrent
//! cold loads hitting disk exactly once, and SIGTERM draining the real
//! binary to exit 0.

#[path = "common/watchdog.rs"]
mod watchdog;

use nggc::gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, ValueType};
use nggc::repository::Repository;
use nggc::server::{Client, ServeConfig, ServeErrorKind, Server, ServerHandle, ServerReply};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;
use watchdog::with_watchdog;

/// Serve tests share the process-global metrics registry; serialize
/// them so counter deltas stay attributable.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nggc_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset(name: &str, regions: usize) -> Dataset {
    let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
    let mut ds = Dataset::new(name, schema);
    let regions: Vec<GRegion> = (0..regions)
        .map(|i| {
            GRegion::new("chr1", (i * 100) as u64, (i * 100 + 50) as u64, Strand::Pos)
                .with_values(vec![(i as f64).into()])
        })
        .collect();
    ds.add_sample(
        Sample::new("s1", name)
            .with_regions(regions)
            .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
    )
    .unwrap();
    ds
}

/// A repository on disk with one saved dataset, reopened cold.
fn cold_repo(tag: &str, name: &str) -> (PathBuf, Repository) {
    let root = tmp(tag);
    {
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset(name, 64)).unwrap();
    }
    (root.clone(), Repository::open(&root).unwrap())
}

/// Start a server on an ephemeral port; returns its address, handle,
/// and the `run()` thread (joined by the caller after shutdown).
fn start(
    repo: Repository,
    config: ServeConfig,
) -> (String, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", repo, config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

#[test]
fn eight_concurrent_clients_share_one_cold_load() {
    let _guard = test_lock();
    with_watchdog("eight_concurrent_clients", 60, || {
        let (root, repo) = cold_repo("concurrent", "PEAKS");
        let reg = nggc::obs::global();
        let loads0 = reg.counter("nggc_repo_loads_total").get();
        let (addr, handle, runner) = start(repo, ServeConfig::default());

        const N: usize = 10;
        let clients: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.query("R = SELECT() PEAKS; MATERIALIZE R;", None, None, 2).unwrap()
                })
            })
            .collect();
        for c in clients {
            match c.join().unwrap() {
                ServerReply::Result { outputs, trace_id, .. } => {
                    assert!(trace_id != 0, "every request runs under a trace");
                    assert_eq!(outputs.len(), 1);
                    assert_eq!(outputs[0].samples, 1);
                    assert_eq!(outputs[0].regions, 64);
                    assert_eq!(outputs[0].head.len(), 2, "head rows as requested");
                }
                other => panic!("expected Result, got {other:?}"),
            }
        }
        // All ten concurrent queries read PEAKS from disk exactly once:
        // the single-flight leader loads, everyone else shares its Arc.
        assert_eq!(
            reg.counter("nggc_repo_loads_total").get() - loads0,
            1,
            "concurrent cold loads must hit disk exactly once"
        );
        assert!(reg.counter("nggc_serve_requests_total").get() >= N as u64);

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn admission_rejects_above_cap_with_retry_after() {
    let _guard = test_lock();
    with_watchdog("admission_rejects", 60, || {
        let (root, repo) = cold_repo("admission", "ADM");
        let config = ServeConfig {
            max_inflight: 2,
            max_queue: 0,
            retry_after: Duration::from_millis(250),
            ..ServeConfig::default()
        };
        let (addr, handle, runner) = start(repo, config);
        let mut client = Client::connect(&addr).unwrap();

        // Pin the whole in-flight capacity, as a saturated server would.
        let held: Vec<_> = (0..2).map(|_| handle.admission().try_admit().unwrap()).collect();
        match client.query("R = SELECT() ADM; MATERIALIZE R;", None, None, 0).unwrap() {
            ServerReply::Error { kind, retry_after_ms, .. } => {
                assert_eq!(kind, ServeErrorKind::Rejected);
                assert_eq!(retry_after_ms, Some(250), "rejection carries the back-off hint");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        // Capacity returned: the same connection now succeeds.
        drop(held);
        match client.query("R = SELECT() ADM; MATERIALIZE R;", None, None, 0).unwrap() {
            ServerReply::Result { .. } => {}
            other => panic!("expected Result after capacity freed, got {other:?}"),
        }

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn one_budget_trip_does_not_disturb_other_clients() {
    let _guard = test_lock();
    with_watchdog("budget_trip", 60, || {
        let (root, repo) = cold_repo("budget", "BUD");
        let (addr, handle, runner) = start(repo, ServeConfig::default());

        // Eight concurrent clients: one with a 16-byte budget that no
        // real dataset fits, seven unconstrained. The starved client
        // bypasses the result cache — a cache hit costs no execution
        // memory, so riding a peer's result would (correctly) not trip
        // its governor, and this test is about the trip's isolation.
        let clients: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let budget = if i == 0 { Some(16) } else { None };
                    client
                        .query_full("R = SELECT() BUD; MATERIALIZE R;", None, budget, 0, i == 0)
                        .unwrap()
                })
            })
            .collect();
        let replies: Vec<ServerReply> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        match &replies[0] {
            ServerReply::Error { kind, .. } => {
                assert_eq!(*kind, ServeErrorKind::MemoryExhausted, "16 B budget must trip");
            }
            other => panic!("expected MemoryExhausted for the starved client, got {other:?}"),
        }
        for reply in &replies[1..] {
            assert!(
                matches!(reply, ServerReply::Result { .. }),
                "an unconstrained client was disturbed: {reply:?}"
            );
        }

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn budgets_carve_from_the_server_pool() {
    let _guard = test_lock();
    with_watchdog("pool_carve", 60, || {
        let (root, repo) = cold_repo("pool", "POOL");
        let config = ServeConfig { mem_pool_bytes: 1024, ..ServeConfig::default() };
        let (addr, handle, runner) = start(repo, config);
        let mut client = Client::connect(&addr).unwrap();

        // A request whose budget exceeds the whole pool is refused as
        // retryable before any execution.
        match client.query("R = SELECT() POOL; MATERIALIZE R;", None, Some(4096), 0).unwrap() {
            ServerReply::Error { kind, retry_after_ms, .. } => {
                assert_eq!(kind, ServeErrorKind::PoolExhausted);
                assert!(retry_after_ms.is_some());
            }
            other => panic!("expected PoolExhausted, got {other:?}"),
        }
        // Pin most of the pool; a fitting budget still passes the pool
        // gate (and then trips its own tiny governor — proving the
        // reservation, not the dataset, was the constraint above).
        let reservation = handle.memory_pool().reserve(1000).unwrap();
        match client.query("R = SELECT() POOL; MATERIALIZE R;", None, Some(24), 0).unwrap() {
            ServerReply::Error { kind, .. } => assert_eq!(kind, ServeErrorKind::MemoryExhausted),
            other => panic!("expected MemoryExhausted, got {other:?}"),
        }
        drop(reservation);
        assert_eq!(handle.memory_pool().reserved(), 0, "reservations return on drop");

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn zero_deadline_trips_typed_deadline_error() {
    let _guard = test_lock();
    with_watchdog("deadline", 60, || {
        let (root, repo) = cold_repo("deadline", "DL");
        let (addr, handle, runner) = start(repo, ServeConfig::default());
        let mut client = Client::connect(&addr).unwrap();
        match client.query("R = SELECT() DL; MATERIALIZE R;", Some(0), None, 0).unwrap() {
            ServerReply::Error { kind, .. } => assert_eq!(kind, ServeErrorKind::DeadlineExceeded),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn parse_errors_are_typed_not_fatal() {
    let _guard = test_lock();
    with_watchdog("parse_error", 60, || {
        let (root, repo) = cold_repo("parse", "P");
        let (addr, handle, runner) = start(repo, ServeConfig::default());
        let mut client = Client::connect(&addr).unwrap();
        match client.query("THIS IS NOT GMQL !!!", None, None, 0).unwrap() {
            ServerReply::Error { kind, .. } => assert_eq!(kind, ServeErrorKind::Parse),
            other => panic!("expected Parse error, got {other:?}"),
        }
        // The connection survives a bad query.
        match client.query("R = SELECT() P; MATERIALIZE R;", None, None, 0).unwrap() {
            ServerReply::Result { .. } => {}
            other => panic!("expected Result, got {other:?}"),
        }
        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn shutdown_refuses_new_queries_and_run_returns() {
    let _guard = test_lock();
    with_watchdog("shutdown", 60, || {
        let (root, repo) = cold_repo("shutdown", "SD");
        let (addr, handle, runner) = start(repo, ServeConfig::default());
        let mut client = Client::connect(&addr).unwrap();
        match client.query("R = SELECT() SD; MATERIALIZE R;", None, None, 0).unwrap() {
            ServerReply::Result { .. } => {}
            other => panic!("expected Result, got {other:?}"),
        }
        handle.shutdown();
        // run() drains and returns cleanly.
        runner.join().unwrap().unwrap();
        // The drained server no longer answers.
        assert!(client.query("R = SELECT() SD; MATERIALIZE R;", None, None, 0).is_err());
        std::fs::remove_dir_all(&root).ok();
    });
}

/// SIGTERM against the real binary: banner parsed for the port, one
/// query served, then a clean drain to exit 0 (the CI smoke contract).
#[test]
#[cfg(unix)]
fn sigterm_drains_the_real_binary_to_exit_zero() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let _guard = test_lock();
    with_watchdog("sigterm", 120, || {
        let root = tmp("sigterm_bin");
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("SIG", 16)).unwrap();
        }
        let mut child = Command::new(env!("CARGO_BIN_EXE_nggc"))
            .args(["--repo", root.to_str().unwrap(), "serve", "--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().unwrap().unwrap();
        let addr = banner.strip_prefix("listening on ").unwrap_or_else(|| {
            panic!("unexpected banner: {banner:?}");
        });

        let mut client = Client::connect(addr).unwrap();
        match client.query("R = SELECT() SIG; MATERIALIZE R;", None, None, 1).unwrap() {
            ServerReply::Result { outputs, .. } => assert_eq!(outputs[0].regions, 16),
            other => panic!("expected Result, got {other:?}"),
        }

        let term = Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
        assert!(term.success(), "kill -TERM failed");
        let status = child.wait().unwrap();
        assert!(status.success(), "serve must drain and exit 0 on SIGTERM, got {status:?}");
        std::fs::remove_dir_all(&root).ok();
    });
}
