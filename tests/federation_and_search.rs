//! Integration: federated execution equivalence (§4.4) and search
//! quality over a planted-relevance corpus (§4.5).

#[path = "common/watchdog.rs"]
mod watchdog;

use nggc::federation::{Federation, FederationNode, TransferLog};
use nggc::gdm::{Dataset, Metadata, Sample, Schema};
use nggc::gmql::GmqlEngine;
use nggc::ontology::mini_umls;
use nggc::repository::MetaIndex;
use nggc::search::{evaluate, MetadataSearch, RankMode};
use nggc::synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};
use watchdog::with_watchdog;

fn world() -> (Dataset, Dataset) {
    let genome = Genome::human(0.001);
    let encode = generate_encode(
        &genome,
        &EncodeConfig { samples: 6, mean_peaks_per_sample: 300.0, seed: 3, ..Default::default() },
    );
    let (annotations, _) = generate_annotations(
        &genome,
        &AnnotationConfig { genes: 80, seed: 9, ..Default::default() },
    );
    (encode, annotations)
}

const QUERY: &str = "
    PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    R     = MAP(n AS COUNT) PROMS PEAKS;
    MATERIALIZE R;
";

#[test]
fn federated_execution_equals_local() {
    with_watchdog("federated_execution_equals_local", 300, || {
        let (encode, annotations) = world();

        let mut local = GmqlEngine::with_workers(2);
        local.register(encode.clone());
        local.register(annotations.clone());
        let expected = local.run(QUERY).unwrap();

        let mut federation = Federation::new();
        let mut node = FederationNode::new("remote", 2);
        node.own(encode);
        node.own(annotations);
        federation.add_node(node);

        let (remote, log) = federation.ship_query("remote", QUERY, 32 * 1024).unwrap();
        assert_eq!(remote["R"].sample_count(), expected["R"].sample_count());
        assert_eq!(remote["R"].region_count(), expected["R"].region_count());
        for (a, b) in remote["R"].samples.iter().zip(&expected["R"].samples) {
            assert_eq!(a.regions, b.regions, "federated results must be bit-identical");
            assert_eq!(a.metadata, b.metadata);
        }
        assert!(log.requests >= 3, "execute + >=1 chunk + release");
    });
}

#[test]
fn federation_estimates_are_in_the_right_ballpark() {
    with_watchdog("federation_estimates_ballpark", 300, || {
        let (encode, annotations) = world();
        let mut federation = Federation::new();
        let mut node = FederationNode::new("remote", 2);
        node.own(encode);
        node.own(annotations);
        federation.add_node(node);

        let mut log = TransferLog::default();
        let estimates = federation.compile_remote("remote", QUERY, &mut log).unwrap();
        let (actual, _) = federation.ship_query("remote", QUERY, 32 * 1024).unwrap();
        let est = &estimates[0];
        let got = actual["R"].region_count();
        // Heuristic estimates: demand the right order of magnitude, not
        // precision.
        assert!(est.regions > 0);
        assert!(
            est.regions as f64 / got as f64 > 0.05 && (est.regions as f64 / got as f64) < 20.0,
            "estimate {} vs actual {got} regions",
            est.regions
        );
    });
}

fn relevance_corpus() -> (MetaIndex, Vec<nggc::repository::SampleRef>) {
    // Planted relevance: samples from cancer cell lines are relevant to
    // the query "cancer".
    let mut ds = Dataset::new("CORPUS", Schema::empty());
    let mut relevant = Vec::new();
    let entries: &[(&str, &str, bool)] = &[
        ("s_hela_1", "HeLa-S3", true),
        ("s_hela_2", "HeLa-S3", true),
        ("s_k562", "K562", true),
        ("s_hepg2", "HepG2", true),
        ("s_a549", "A549", true),
        ("s_mcf7", "MCF-7", true),
        ("s_gm", "GM12878", false),
        ("s_imr", "IMR90", false),
        ("s_h1", "H1-hESC", false),
    ];
    for (name, cell, rel) in entries {
        ds.add_sample(
            Sample::new(*name, "CORPUS")
                .with_metadata(Metadata::from_pairs([("cell", *cell), ("assay", "ChipSeq")])),
        )
        .unwrap();
        if *rel {
            relevant.push(nggc::repository::SampleRef {
                dataset: "CORPUS".into(),
                sample: (*name).into(),
            });
        }
    }
    let mut idx = MetaIndex::new();
    idx.add_dataset(&ds);
    (idx, relevant)
}

#[test]
fn ontology_expansion_dominates_plain_search() {
    let (idx, relevant) = relevance_corpus();
    let onto = mini_umls();
    let search = MetadataSearch::new(&idx, Some(&onto));

    let plain = search.search("cancer", RankMode::TfIdf);
    let expanded = search.search("cancer", RankMode::Expanded);
    let e_plain = evaluate(&plain, &relevant);
    let e_expanded = evaluate(&expanded, &relevant);

    assert_eq!(e_plain.recall, 0.0, "no sample mentions 'cancer' literally");
    assert!(
        e_expanded.recall >= 0.99,
        "expansion should reach all cancer lines, got {}",
        e_expanded.recall
    );
    assert!(
        e_expanded.precision >= 0.99,
        "no non-cancer line should match, got {}",
        e_expanded.precision
    );
}

#[test]
fn boolean_search_is_high_precision_low_recall() {
    let (idx, relevant) = relevance_corpus();
    let search = MetadataSearch::new(&idx, None);
    let hits = search.search("hela chipseq", RankMode::Boolean);
    let eval = evaluate(&hits, &relevant);
    assert_eq!(hits.len(), 2, "only the two HeLa samples");
    assert!((eval.precision - 1.0).abs() < 1e-12);
    assert!(eval.recall < 0.5, "misses the other cancer lines");
}
