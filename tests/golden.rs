//! Golden-file tests pinning the machine-readable JSON schemas of
//! `nggc stats --json` and `nggc query --explain-analyze --json`.
//!
//! The documents are normalized before comparison — metric values and
//! timings are zeroed, histogram bucket arrays emptied — so the goldens
//! pin the *shape* consumers parse (key names, nesting, metric catalog)
//! while staying byte-stable across machines and runs. To bless an
//! intentional schema change, re-run with `UPDATE_GOLDEN=1` and review
//! the golden diff like any other code change.

use serde::Content;
use std::path::{Path, PathBuf};
use std::process::Command;

fn nggc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nggc"))
}

fn tmp_repo(tag: &str) -> PathBuf {
    // Zero-pad the pid: `import` stamps each sample with an
    // `imported_from` path, so the byte counts pinned by the analyze
    // golden depend on the path *length*. A fixed-width pid keeps them
    // deterministic across runs.
    let dir = std::env::temp_dir().join(format!("nggc_golden_{tag}_{:08}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run(repo: &PathBuf, args: &[&str]) -> String {
    let out = nggc().arg("--repo").arg(repo).args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "`nggc {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Zero every number under `c`. When a map key is in `volatile` its
/// whole subtree is zeroed even if `zero_all` is false; a key named
/// `buckets` (histogram fill is timing-shaped) is emptied outright.
fn normalize(c: &mut Content, zero_all: bool, volatile: &[&str]) {
    match c {
        Content::Seq(items) => {
            for item in items {
                normalize(item, zero_all, volatile);
            }
        }
        Content::Map(entries) => {
            for (k, v) in entries {
                let key = match k {
                    Content::Str(s) => s.as_str(),
                    _ => "",
                };
                if key == "buckets" {
                    *v = Content::Seq(Vec::new());
                    continue;
                }
                normalize(v, zero_all || volatile.contains(&key), volatile);
            }
        }
        Content::I64(n) => {
            if zero_all {
                *n = 0;
            }
        }
        Content::U64(n) => {
            if zero_all {
                *n = 0;
            }
        }
        Content::F64(n) => {
            if zero_all {
                *n = 0.0;
            }
        }
        Content::Null | Content::Bool(_) | Content::Str(_) => {}
    }
}

fn check_golden(name: &str, raw_json: &str, zero_all: bool, volatile: &[&str]) {
    let mut doc: Content = serde_json::from_str(raw_json).expect("output is valid JSON");
    normalize(&mut doc, zero_all, volatile);
    let normalized =
        serde_json::to_string_pretty(&doc).expect("normalized document serializes") + "\n";

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &normalized).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it", path.display())
    });
    assert_eq!(
        normalized, expected,
        "normalized {} drifted from its golden; if the schema change is \
         intentional, bless it with UPDATE_GOLDEN=1",
        name
    );
}

fn seed_repo(tag: &str) -> PathBuf {
    let repo = tmp_repo(tag);
    // Fixed-width pid, same reason as `tmp_repo`.
    let dir =
        std::env::temp_dir().join(format!("nggc_golden_data_{tag}_{:08}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let peaks = dir.join("peaks.bed");
    std::fs::write(
        &peaks,
        "chr1\t100\t300\t0.0001\nchr1\t500\t800\t0.0002\nchr2\t100\t300\t0.00015\n",
    )
    .unwrap();
    let proms = dir.join("promoters.bed");
    std::fs::write(&proms, "chr1\t50\t350\nchr1\t400\t900\nchr2\t50\t350\n").unwrap();
    run(&repo, &["init"]);
    run(&repo, &["import", peaks.to_str().unwrap(), "PEAKS"]);
    run(&repo, &["import", proms.to_str().unwrap(), "PROMS"]);
    repo
}

const MAP_QUERY: &str = "R = MAP(peak_count AS COUNT) PROMS PEAKS; MATERIALIZE R;";

#[test]
fn stats_json_schema_is_stable() {
    let repo = seed_repo("stats");
    // Warm the registry with a fixed query so the full metric catalog
    // (exec, pool, repository) registers; all values are then zeroed.
    let out = run(&repo, &["stats", "--json", "-e", MAP_QUERY]);
    check_golden("stats.json.golden", &out, true, &[]);
}

#[test]
fn explain_analyze_row_counts_match_materialized_cardinalities() {
    let repo = seed_repo("rows");
    let out = run(&repo, &["query", "-e", MAP_QUERY, "--explain-analyze", "--json"]);
    let doc: Content = serde_json::from_str(&out).expect("valid JSON");

    // Walk the document with plain lookups (the vendored JSON layer has
    // no Value type; Content::Map is a key/value pair list).
    fn get<'a>(c: &'a Content, key: &str) -> &'a Content {
        match c {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("expected map for {key}, got {other:?}"),
        }
    }
    fn num(c: &Content) -> u64 {
        match c {
            Content::U64(n) => *n,
            Content::I64(n) => *n as u64,
            other => panic!("expected number, got {other:?}"),
        }
    }
    fn seq(c: &Content) -> &[Content] {
        match c {
            Content::Seq(items) => items,
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    // The materialized output R…
    let outputs = seq(get(&doc, "outputs"));
    assert_eq!(outputs.len(), 1);
    let r = &outputs[0];
    assert_eq!(get(r, "name"), &Content::Str("R".to_owned()));

    // …must agree exactly with the MAP node's measured output rows.
    let nodes = seq(get(&doc, "nodes"));
    let map_node = nodes
        .iter()
        .find(|n| get(n, "operator") == &Content::Str("MAP".to_owned()))
        .expect("plan contains the MAP node");
    assert_eq!(num(get(map_node, "samples_out")), num(get(r, "samples")));
    assert_eq!(num(get(map_node, "regions_out")), num(get(r, "regions")));

    // And with ground truth for this fixed workload: one output sample
    // per PROMS sample, one output region per promoter region.
    assert_eq!(num(get(r, "samples")), 1);
    assert_eq!(num(get(r, "regions")), 3);

    // The MAP node's inputs saw both sources' rows.
    assert_eq!(num(get(map_node, "samples_in")), 2);
    assert_eq!(num(get(map_node, "regions_in")), 6);
}

#[test]
fn explain_analyze_json_schema_is_stable() {
    let repo = seed_repo("analyze");
    let out = run(&repo, &["query", "-e", MAP_QUERY, "--explain-analyze", "--json"]);
    // Only timings are volatile: cardinalities, byte counts, and
    // governor charges are deterministic for the fixed inputs and stay
    // pinned verbatim in the golden.
    check_golden("analyze.json.golden", &out, false, &["elapsed_us", "wall_us", "start_us"]);
}
