//! §4.5 feature-based region search, end to end over synthetic data:
//! "the user selects interesting regions, then provides information about
//! the features of interest, then those features are computed, and
//! finally regions are ordered based on their computed features".

use nggc::engine::NcList;
use nggc::search::{compute_features, rank_regions, Feature, FeatureSpec};
use nggc::synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};

#[test]
fn search_finds_promoter_like_peaks() {
    let genome = Genome::human(0.001);
    let encode = generate_encode(
        &genome,
        &EncodeConfig {
            samples: 1,
            mean_peaks_per_sample: 2_000.0,
            seed: 77,
            ..Default::default()
        },
    );
    let (annotations, _) = generate_annotations(
        &genome,
        &AnnotationConfig { genes: 100, seed: 3, ..Default::default() },
    );
    let candidates = &encode.samples[0];
    let promoters = &annotations.samples[0];

    // Features: peak length, signal, and overlap with annotations.
    let spec = FeatureSpec {
        features: vec![
            Feature::Length,
            Feature::Attribute("signal_value".into()),
            Feature::OverlapCount("ucsc_synthetic".into()),
        ],
    };
    let matrix = compute_features(candidates, &spec, &encode, &[promoters], &|c| genome.len_of(c));
    assert_eq!(matrix.rows.len(), candidates.region_count());

    // Target: a 300bp, high-signal peak sitting on an annotation.
    let ranked = rank_regions(candidates, &matrix, &[300.0, 45.0, 1.0], 25);
    assert_eq!(ranked.len(), 25);
    // The ranking must actually prefer annotation-overlapping peaks:
    // compare the hit rate of the top-25 against the global rate.
    let overlap_rate = |regions: &[&nggc::gdm::GRegion]| -> f64 {
        let hits = regions
            .iter()
            .filter(|r| promoters.chrom_slice(&r.chrom).iter().any(|p| p.overlaps(r)))
            .count();
        hits as f64 / regions.len().max(1) as f64
    };
    let top: Vec<&nggc::gdm::GRegion> = ranked.iter().map(|r| r.region).collect();
    let all: Vec<&nggc::gdm::GRegion> = candidates.regions.iter().collect();
    let top_rate = overlap_rate(&top);
    let base_rate = overlap_rate(&all);
    assert!(
        top_rate > base_rate,
        "feature-guided ranking must enrich for annotation overlap: top {top_rate:.2} vs base {base_rate:.2}"
    );
    // Distances are sorted.
    for w in ranked.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }
}

#[test]
fn nclist_accelerates_repeated_region_probes() {
    // The index path used when the same reference is probed repeatedly:
    // verify identical answers against the per-query scan.
    let genome = Genome::human(0.0005);
    let encode = generate_encode(
        &genome,
        &EncodeConfig { samples: 1, mean_peaks_per_sample: 500.0, seed: 5, ..Default::default() },
    );
    let sample = &encode.samples[0];
    for chrom in sample.chromosomes().into_iter().take(3) {
        let slice = sample.chrom_slice(&chrom);
        let index = NcList::build(slice);
        for probe in slice.iter().step_by(7) {
            let via_index = index.overlaps_vec(probe.left, probe.right);
            let via_scan: Vec<usize> = slice
                .iter()
                .enumerate()
                .filter(|(_, r)| r.overlaps(probe))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(via_index, via_scan);
        }
    }
}
