//! Provenance tracing across deep pipelines — "knowing why resulting
//! regions were produced is quite relevant" (paper §2). These tests pin
//! the lineage contract: every result sample can name its source samples,
//! the operator chain that produced it, and the parameters each operator
//! ran with.

use nggc::gdm::*;
use nggc::gmql::GmqlEngine;

fn world() -> GmqlEngine {
    let mut engine = GmqlEngine::with_workers(2);
    let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
    let mut peaks = Dataset::new("PEAKS", schema);
    for (name, cell) in [("rep1", "HeLa"), ("rep2", "HeLa"), ("other", "K562")] {
        peaks
            .add_sample(
                Sample::new(name, "PEAKS")
                    .with_regions(vec![
                        GRegion::new("chr1", 0, 100, Strand::Unstranded)
                            .with_values(vec![5.0.into()]),
                        GRegion::new("chr1", 200, 300, Strand::Unstranded)
                            .with_values(vec![2.0.into()]),
                    ])
                    .with_metadata(Metadata::from_pairs([("cell", cell)])),
            )
            .unwrap();
    }
    engine.register(peaks);

    let mut genes = Dataset::new("GENES", Schema::empty());
    genes
        .add_sample(Sample::new("ann", "GENES").with_regions(vec![GRegion::new(
            "chr1",
            50,
            250,
            Strand::Unstranded,
        )]))
        .unwrap();
    engine.register(genes);
    engine
}

#[test]
fn deep_pipeline_lineage_names_all_contributors() {
    let engine = world();
    let out = engine
        .run(
            "HELA  = SELECT(cell == 'HeLa') PEAKS;
             CONS  = COVER(2, ANY) HELA;
             M     = MAP(n AS COUNT) GENES CONS;
             MATERIALIZE M;",
        )
        .unwrap();
    let m = &out["M"];
    assert_eq!(m.sample_count(), 1);
    let p = &m.samples[0].provenance;

    // Operator chain from the result back through the first input.
    assert_eq!(p.operator_chain()[0], "MAP");
    // Sources: the annotation sample and BOTH HeLa replicas — but not the
    // K562 sample removed by SELECT.
    let sources = p.sources();
    assert!(sources.contains(&("GENES".to_string(), "ann".to_string())));
    assert!(sources.contains(&("PEAKS".to_string(), "rep1".to_string())));
    assert!(sources.contains(&("PEAKS".to_string(), "rep2".to_string())));
    assert!(
        !sources.contains(&("PEAKS".to_string(), "other".to_string())),
        "samples filtered out by SELECT never contribute"
    );

    // The rendered tree names every operator with its parameters.
    let text = p.to_string();
    for needle in ["MAP", "COVER", "SELECT", "cell == 'HeLa'", "source GENES/ann"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert!(p.depth() >= 3, "MAP <- COVER <- SELECT <- source: depth {}", p.depth());
}

#[test]
fn union_lineage_keeps_both_sides() {
    let engine = world();
    let out = engine.run("U = UNION() GENES PEAKS; MATERIALIZE U;").unwrap();
    let u = &out["U"];
    assert_eq!(u.sample_count(), 4);
    // Each output sample records its side and original source.
    let left = u.sample_by_name("left_ann").unwrap();
    assert_eq!(left.provenance.sources(), vec![("GENES".to_string(), "ann".to_string())]);
    let right = u.sample_by_name("right_rep2").unwrap();
    assert_eq!(right.provenance.sources(), vec![("PEAKS".to_string(), "rep2".to_string())]);
}

#[test]
fn difference_lineage_records_negatives() {
    let engine = world();
    let out = engine.run("D = DIFFERENCE() PEAKS GENES; MATERIALIZE D;").unwrap();
    let s = &out["D"].samples[0];
    let sources = s.provenance.sources();
    // The negative (GENES) sample participates in the lineage: it
    // explains why regions are ABSENT.
    assert!(sources.contains(&("GENES".to_string(), "ann".to_string())));
}

#[test]
fn provenance_serializes_with_datasets() {
    let engine = world();
    let out = engine.run("H = SELECT(cell == 'HeLa') PEAKS; MATERIALIZE H;").unwrap();
    let json = serde_json::to_string(&out["H"]).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.samples[0].provenance.operator_chain(), vec!["SELECT".to_string()]);
    assert_eq!(
        back.samples[0].provenance.sources(),
        vec![("PEAKS".to_string(), "rep1".to_string())]
    );
}
