//! Property-based tests over the core invariants (DESIGN.md §7).

use nggc::engine::{
    coverage_segments, gap_pairs_naive, gap_pairs_sort_merge, k_nearest, overlap_pairs_binned,
    overlap_pairs_naive, overlap_pairs_sort_merge, Binner, NcList, WorkerPool,
};
use nggc::gdm::*;
use nggc::gmql::{parse, GmqlEngine, MetaPredicate, Statement};
use proptest::prelude::*;

/// Random sorted region list on one chromosome.
fn regions_strategy(max_len: usize) -> impl Strategy<Value = Vec<GRegion>> {
    prop::collection::vec((0u64..5_000, 0u64..400), 0..max_len).prop_map(|pairs| {
        let mut rs: Vec<GRegion> = pairs
            .into_iter()
            .map(|(l, w)| GRegion::new("chr1", l, l + w, Strand::Unstranded))
            .collect();
        rs.sort_by(|a, b| a.cmp_coords(b));
        rs
    })
}

fn collect(f: impl FnOnce(&mut dyn FnMut(usize, usize))) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    f(&mut |i, j| out.push((i, j)));
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binned and sort-merge joins agree with the exhaustive reference,
    /// for any bin width.
    #[test]
    fn join_strategies_agree(
        left in regions_strategy(60),
        right in regions_strategy(60),
        width in 1u64..2_000,
    ) {
        let naive = collect(|e| overlap_pairs_naive(&left, &right, e));
        let merge = collect(|e| overlap_pairs_sort_merge(&left, &right, e));
        let binned = collect(|e| overlap_pairs_binned(&left, &right, Binner::new(width), e));
        prop_assert_eq!(&naive, &merge);
        prop_assert_eq!(&naive, &binned);
        // Fourth strategy: probe an NCList over `right` with every left.
        let index = NcList::build(&right);
        let mut via_index = Vec::new();
        for (i, a) in left.iter().enumerate() {
            index.overlaps(a.left, a.right, |j| via_index.push((i, j)));
        }
        via_index.sort_unstable();
        via_index.dedup();
        prop_assert_eq!(&naive, &via_index);
    }

    /// Binned join emits each pair exactly once (anchor-bin dedup) —
    /// checked by counting raw emissions.
    #[test]
    fn binned_join_no_duplicates(
        left in regions_strategy(40),
        right in regions_strategy(40),
        width in 1u64..500,
    ) {
        let mut raw = Vec::new();
        overlap_pairs_binned(&left, &right, Binner::new(width), |i, j| raw.push((i, j)));
        let mut dedup = raw.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(raw.len(), dedup.len(), "anchor rule must deduplicate");
    }

    /// Gap join agrees with its exhaustive reference.
    #[test]
    fn gap_join_agrees(
        left in regions_strategy(40),
        right in regions_strategy(40),
        gap in 0u64..1_000,
    ) {
        let naive = collect(|e| gap_pairs_naive(&left, &right, gap, e));
        let merge = collect(|e| gap_pairs_sort_merge(&left, &right, gap, e));
        prop_assert_eq!(naive, merge);
    }

    /// Coverage conservation: Σ segment(len × acc) = Σ interval lengths,
    /// segments are disjoint, in order, with positive accumulation.
    #[test]
    fn coverage_conserves_mass(intervals in prop::collection::vec((0u64..3_000, 1u64..300), 0..50)) {
        let ivals: Vec<(u64, u64)> = intervals.iter().map(|&(l, w)| (l, l + w)).collect();
        let segs = coverage_segments(&ivals);
        let seg_mass: u64 = segs.iter().map(|s| (s.right - s.left) * s.acc as u64).sum();
        let input_mass: u64 = ivals.iter().map(|&(l, r)| r - l).sum();
        prop_assert_eq!(seg_mass, input_mass);
        for w in segs.windows(2) {
            prop_assert!(w[0].right <= w[1].left, "segments disjoint and ordered");
        }
        prop_assert!(segs.iter().all(|s| s.acc > 0 && s.left < s.right));
    }

    /// k-nearest matches a brute-force search on distances.
    #[test]
    fn k_nearest_matches_bruteforce(
        anchors in regions_strategy(12),
        others in regions_strategy(30),
        k in 1usize..5,
    ) {
        let got = k_nearest(&anchors, &others, k);
        for (a, picked) in anchors.iter().zip(&got) {
            let mut dists: Vec<(i64, usize)> = others
                .iter()
                .enumerate()
                .map(|(j, o)| (a.distance(o).unwrap().max(0), j))
                .collect();
            dists.sort_unstable();
            let expect: Vec<usize> =
                dists.iter().take(k).map(|&(_, j)| j).collect();
            // Compare distance multisets (ties may pick different ids of
            // equal distance — but our tie-break is by index, so compare
            // exactly).
            prop_assert_eq!(picked, &expect);
        }
    }

    /// Schema merge keeps every left attribute at its position and maps
    /// every right attribute somewhere type-correct; reshaped rows place
    /// values where the maps say.
    #[test]
    fn schema_merge_sound(
        left_names in prop::collection::btree_set("[a-e]{1,3}", 0..5),
        right_names in prop::collection::btree_set("[c-h]{1,3}", 0..5),
    ) {
        let mk = |names: &std::collections::BTreeSet<String>, ty| {
            Schema::new(names.iter().map(|n| Attribute::new(n.clone(), ty)).collect()).unwrap()
        };
        let a = mk(&left_names, ValueType::Int);
        let b = mk(&right_names, ValueType::Int);
        let m = a.merge(&b);
        for (i, attr) in a.attributes().iter().enumerate() {
            prop_assert_eq!(m.left_map[i], i, "left attributes keep positions");
            prop_assert_eq!(&m.schema.attributes()[i].name, &attr.name);
        }
        for (j, attr) in b.attributes().iter().enumerate() {
            let tgt = &m.schema.attributes()[m.right_map[j]];
            prop_assert_eq!(tgt.ty, attr.ty);
        }
        // Same-type common attributes unify: merged arity = |A ∪ B|.
        let union_count = left_names.union(&right_names).count();
        prop_assert_eq!(m.schema.len(), union_count);
    }

    /// Values survive a render→parse roundtrip.
    #[test]
    fn value_roundtrip(i in any::<i64>(), f in -1e12f64..1e12, s in "[a-zA-Z0-9_]{1,12}") {
        let vi = Value::Int(i);
        prop_assert_eq!(Value::parse_as(&vi.render(), ValueType::Int).unwrap(), vi);
        let vf = Value::Float(f);
        prop_assert_eq!(Value::parse_as(&vf.render(), ValueType::Float).unwrap(), vf);
        let vs = Value::Str(s.clone());
        prop_assert_eq!(Value::parse_as(&vs.render(), ValueType::Str).unwrap(), vs);
    }

    /// The worker pool computes exactly what a serial map computes.
    #[test]
    fn pool_matches_serial(xs in prop::collection::vec(any::<i32>(), 0..300), workers in 1usize..6) {
        let pool = WorkerPool::new(workers);
        let parallel = pool.parallel_map(xs.clone(), |x| x as i64 * 3 - 1);
        let serial: Vec<i64> = xs.into_iter().map(|x| x as i64 * 3 - 1).collect();
        prop_assert_eq!(parallel, serial);
    }
}

// ---------------------------------------------------------------------------
// Metadata predicates: Display output re-parses to an equivalent predicate.
// ---------------------------------------------------------------------------

fn meta_pred_strategy() -> impl Strategy<Value = MetaPredicate> {
    let leaf = ("[a-z]{1,4}", "[a-z0-9]{1,4}").prop_map(|(a, v)| MetaPredicate::eq(a, v));
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MetaPredicate::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| MetaPredicate::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|p| MetaPredicate::Not(Box::new(p))),
        ]
    })
}

fn region_expr_strategy() -> impl Strategy<Value = nggc::gmql::RegionExpr> {
    use nggc::gmql::{BinOp, CmpOp, RegionExpr};
    let leaf = prop_oneof![
        prop_oneof![Just("left"), Just("right"), Just("len"), Just("score")]
            .prop_map(RegionExpr::attr),
        (-50i64..50).prop_map(|n| RegionExpr::Lit(Value::Int(n))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        let op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Cmp(CmpOp::Lt)),
            Just(BinOp::Cmp(CmpOp::Eq)),
            Just(BinOp::Cmp(CmpOp::Ge)),
        ];
        (inner.clone(), op, inner)
            .prop_map(|(a, o, b)| RegionExpr::Binary(Box::new(a), o, Box::new(b)))
    })
}

fn meta_strategy() -> impl Strategy<Value = Metadata> {
    prop::collection::vec(("[a-z]{1,4}", "[a-z0-9]{1,4}"), 0..6)
        .prop_map(|pairs| Metadata::from_pairs(pairs.iter().map(|(a, b)| (a.as_str(), b.as_str()))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(pred) re-parses (inside a SELECT) into a predicate with
    /// identical truth value on arbitrary metadata.
    #[test]
    fn meta_predicate_print_parse_equivalence(
        pred in meta_pred_strategy(),
        meta in meta_strategy(),
    ) {
        let text = format!("X = SELECT({pred}) D;");
        let stmts = parse(&text).unwrap();
        let Statement::Assign { call, .. } = &stmts[0] else { panic!("assign expected") };
        let nggc::gmql::Operator::Select { meta: reparsed, .. } = &call.op else {
            panic!("select expected")
        };
        prop_assert_eq!(pred.eval(&meta), reparsed.eval(&meta));
    }

    /// print(region expr) re-parses into an expression with identical
    /// evaluation on arbitrary regions.
    #[test]
    fn region_expr_print_parse_equivalence(
        expr in region_expr_strategy(),
        left in 0u64..1000,
        width in 1u64..100,
        score in -100i64..100,
    ) {
        let text = format!("X = SELECT(region: {expr}) D;");
        let Ok(stmts) = parse(&text) else {
            // Some printed forms (e.g. bare attribute as a predicate) are
            // valid expressions but the outer grammar is identical, so a
            // parse failure would be a real bug.
            return Err(TestCaseError::fail(format!("unparseable: {text}")));
        };
        let Statement::Assign { call, .. } = &stmts[0] else { panic!("assign") };
        let nggc::gmql::Operator::Select { region: Some(reparsed), .. } = &call.op else {
            panic!("select with region predicate")
        };
        let schema =
            Schema::new(vec![Attribute::new("score", ValueType::Int)]).unwrap();
        let region = GRegion::new("chr1", left, left + width, Strand::Pos)
            .with_values(vec![Value::Int(score)]);
        let a = expr.eval(&region, &schema);
        let b = reparsed.eval(&region, &schema);
        // NaN-safe comparison through total order.
        prop_assert_eq!(a.total_cmp(&b), std::cmp::Ordering::Equal, "{} vs {}", a, b);
    }

    /// SELECT with a region predicate keeps exactly the regions the
    /// predicate admits (engine vs direct evaluation).
    #[test]
    fn select_region_predicate_exact(
        lefts in prop::collection::vec(0u64..1000, 1..30),
        threshold in 0u64..1000,
    ) {
        let mut ds = Dataset::new("D", Schema::empty());
        let regions: Vec<GRegion> = lefts
            .iter()
            .map(|&l| GRegion::new("chr1", l, l + 10, Strand::Unstranded))
            .collect();
        ds.add_sample(Sample::new("s", "D").with_regions(regions.clone())).unwrap();
        let mut engine = GmqlEngine::with_workers(2);
        engine.register(ds);
        let out = engine
            .run(&format!("X = SELECT(region: left < {threshold}) D; MATERIALIZE X;"))
            .unwrap();
        let expected = regions.iter().filter(|r| r.left < threshold).count();
        prop_assert_eq!(out["X"].region_count(), expected);
    }

    /// MAP COUNT equals the brute-force overlap count for every
    /// reference region.
    #[test]
    fn map_count_matches_bruteforce(
        refs in regions_strategy(20),
        exps in regions_strategy(40),
    ) {
        let mut rd = Dataset::new("R", Schema::empty());
        rd.add_sample(Sample::new("r", "R").with_regions(refs.clone())).unwrap();
        let mut ed = Dataset::new("E", Schema::empty());
        ed.add_sample(Sample::new("e", "E").with_regions(exps.clone())).unwrap();
        let mut engine = GmqlEngine::with_workers(2);
        engine.register(rd);
        engine.register(ed);
        let out = engine.run("M = MAP(n AS COUNT) R E; MATERIALIZE M;").unwrap();
        let m = &out["M"];
        prop_assert_eq!(m.sample_count(), 1);
        for region in &m.samples[0].regions {
            let expected = exps
                .iter()
                .filter(|e| {
                    interval_overlap(region.left, region.right, e.left, e.right)
                })
                .count() as i64;
            prop_assert_eq!(region.values[0].as_i64().unwrap(), expected,
                "region {}..{}", region.left, region.right);
        }
    }
}

// ---------------------------------------------------------------------------
// Operator-level properties through the full engine.
// ---------------------------------------------------------------------------

/// Build a dataset of `n_samples` samples from interval lists.
fn dataset_from(samples: &[Vec<(u64, u64)>]) -> Dataset {
    let mut ds = Dataset::new("P", Schema::empty());
    for (i, ivals) in samples.iter().enumerate() {
        let regions = ivals
            .iter()
            .map(|&(l, w)| GRegion::new("chr1", l, l + w, Strand::Unstranded))
            .collect();
        ds.add_sample(Sample::new(format!("s{i}"), "P").with_regions(regions)).unwrap();
    }
    ds
}

fn samples_strategy() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    prop::collection::vec(prop::collection::vec((0u64..2_000, 1u64..200), 0..15), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// COVER-family conservation laws: HISTOGRAM(1,ANY) mass equals the
    /// sweep-line coverage; COVER merges HISTOGRAM segments (same bp,
    /// fewer or equal regions); SUMMIT regions are a subset of
    /// HISTOGRAM's; FLAT(1,ANY) spans at least COVER(1,ANY).
    #[test]
    fn cover_family_conservation(samples in samples_strategy()) {
        let ds = dataset_from(&samples);
        let mut engine = GmqlEngine::with_workers(2);
        engine.register(ds);
        let run = |q: &str| {
            engine.run(q).unwrap().remove("X").unwrap()
        };
        let hist = run("X = HISTOGRAM(1, ANY) P; MATERIALIZE X;");
        let cov = run("X = COVER(1, ANY) P; MATERIALIZE X;");
        let flat = run("X = FLAT(1, ANY) P; MATERIALIZE X;");
        let summit = run("X = SUMMIT(1, ANY) P; MATERIALIZE X;");

        let bp = |d: &Dataset| -> u64 {
            d.samples.iter().flat_map(|s| &s.regions).map(|r| r.len()).sum()
        };
        // Coverage ground truth from the kernel.
        let ivals: Vec<(u64, u64)> = samples
            .iter()
            .flatten()
            .map(|&(l, w)| (l, l + w))
            .collect();
        let truth_bp: u64 = coverage_segments(&ivals)
            .iter()
            .map(|s| s.right - s.left)
            .sum();
        prop_assert_eq!(bp(&hist), truth_bp, "histogram covers exactly the covered bases");
        prop_assert_eq!(bp(&cov), truth_bp, "cover at min=1 covers the same bases");
        prop_assert!(cov.region_count() <= hist.region_count(), "cover merges");
        prop_assert!(bp(&flat) >= bp(&cov), "flat extends to contributing hulls");
        prop_assert!(summit.region_count() <= hist.region_count());
        // Every summit region coincides with some histogram segment.
        let hist_regions: Vec<(u64, u64)> = hist.samples[0]
            .regions
            .iter()
            .map(|r| (r.left, r.right))
            .collect();
        for r in &summit.samples[0].regions {
            prop_assert!(hist_regions.contains(&(r.left, r.right)), "summit ⊆ histogram");
        }
    }

    /// DIFFERENCE through the engine equals a manual overlap filter.
    #[test]
    fn difference_matches_manual_filter(
        pos in prop::collection::vec((0u64..2_000, 1u64..200), 0..15),
        neg in prop::collection::vec((0u64..2_000, 1u64..200), 0..15),
    ) {
        let a = dataset_from(std::slice::from_ref(&pos));
        let mut b = dataset_from(std::slice::from_ref(&neg));
        b.name = "N".into();
        for s in &mut b.samples {
            // Rename to avoid clash in the engine registry.
            s.name = format!("n_{}", s.name);
        }
        let mut engine = GmqlEngine::with_workers(2);
        engine.register(a);
        engine.register(b);
        let out = engine.run("X = DIFFERENCE() P N; MATERIALIZE X;").unwrap();
        let kept: Vec<(u64, u64)> = out["X"].samples[0]
            .regions
            .iter()
            .map(|r| (r.left, r.right))
            .collect();
        let mut expected: Vec<(u64, u64)> = pos
            .iter()
            .map(|&(l, w)| (l, l + w))
            .filter(|&(l, r)| {
                !neg.iter().any(|&(nl, nw)| interval_overlap(l, r, nl, nl + nw))
            })
            .collect();
        expected.sort_unstable();
        let mut kept_sorted = kept;
        kept_sorted.sort_unstable();
        prop_assert_eq!(kept_sorted, expected);
    }

    /// UNION preserves total cardinalities under schema merging.
    #[test]
    fn union_preserves_cardinalities(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let da = dataset_from(&a);
        let mut db = dataset_from(&b);
        db.name = "Q".into();
        let (sa, ra) = (da.sample_count(), da.region_count());
        let (sb, rb) = (db.sample_count(), db.region_count());
        let mut engine = GmqlEngine::with_workers(2);
        engine.register(da);
        engine.register(db);
        let out = engine.run("X = UNION() P Q; MATERIALIZE X;").unwrap();
        prop_assert_eq!(out["X"].sample_count(), sa + sb);
        prop_assert_eq!(out["X"].region_count(), ra + rb);
        out["X"].validate().unwrap();
    }
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: format parsers must return Err on broken input —
// never panic, whatever the bytes (robustness satellite, ISSUE 4).
// ---------------------------------------------------------------------------

use nggc::formats::native_v2::{decode_dataset_v2, encode_dataset_v2};
use nggc::formats::FileFormat;

const ALL_FORMATS: [FileFormat; 8] = [
    FileFormat::Bed,
    FileFormat::NarrowPeak,
    FileFormat::BroadPeak,
    FileFormat::Gtf,
    FileFormat::Gff3,
    FileFormat::Vcf,
    FileFormat::BedGraph,
    FileFormat::Wig,
];

/// A valid multi-line document per format, used as truncation stock.
fn valid_doc(format: FileFormat) -> String {
    match format {
        FileFormat::Bed => "chr1\t0\t100\tpeak_a\t3.5\t+\nchr2\t50\t60\tpeak_b\t1.0\t-\n".into(),
        FileFormat::NarrowPeak => {
            "chr1\t0\t100\tp\t500\t+\t3.1\t2.2\t1.1\t50\nchr1\t200\t300\tq\t100\t-\t1.0\t0.5\t0.2\t25\n".into()
        }
        FileFormat::BroadPeak => {
            "chr1\t0\t100\tp\t500\t+\t3.1\t2.2\t1.1\nchr1\t200\t300\tq\t100\t-\t1.0\t0.5\t0.2\n".into()
        }
        FileFormat::Gtf => {
            "chr1\thavana\tgene\t100\t200\t0.5\t+\t.\tgene_id \"g1\"; transcript_id \"t1\";\n".into()
        }
        FileFormat::Gff3 => {
            "chr1\thavana\tgene\t100\t200\t0.5\t+\t.\tID=g1;Name=G1\n".into()
        }
        FileFormat::Vcf => {
            "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\nchr1\t7\trs1\tA\tC\t50\tPASS\tEND=9\n".into()
        }
        FileFormat::BedGraph => "chr1 0 100 0.5\nchr1 100 200 1.5\n".into(),
        FileFormat::Wig => {
            "fixedStep chrom=chr1 start=1 step=10 span=5\n0.5\n1.5\nvariableStep chrom=chr2 span=3\n7 2.5\n".into()
        }
    }
}

/// Inputs that must be rejected: coordinate overflow and nonsense rows.
/// Each entry applies to every text format (a row with u64::MAX-adjacent
/// coordinates is garbage for all of them even where columns differ).
fn overflow_corpus() -> Vec<String> {
    let max = u64::MAX;
    vec![
        // end < start with coordinates at the representable edge.
        format!("chr1\t{max}\t0\tx\t1\t+\t1\t1\t1\t0\n"),
        // numeric fields that exceed u64.
        "chr1\t99999999999999999999\t5\tx\t1\t+\t1\t1\t1\t0\n".into(),
        // WIG declaration placing the window beyond u64::MAX.
        format!("fixedStep chrom=chr1 start={max} step=2 span=100\n1.0\n2.0\n"),
        format!("variableStep chrom=chr1 span={max}\n{max} 1.0\n"),
        // VCF row whose POS + REF length wraps.
        format!("chr1\t{max}\trs\tACGT\tA\t50\tPASS\t.\n"),
    ]
}

#[test]
fn overflow_corpus_rejected_by_every_parser() {
    for format in ALL_FORMATS {
        for bad in overflow_corpus() {
            let result = format.parse(&bad);
            assert!(result.is_err(), "{format:?} accepted overflow input {bad:?}: {result:?}");
        }
    }
}

#[test]
fn binary_garbage_rejected_by_every_parser() {
    // Non-empty rows of control bytes and shell noise: parseable by
    // nothing, but must fail as a typed error.
    let garbage: &[&str] = &[
        "\u{0}\u{1}\u{2}\u{3}\u{4}\n",
        "\u{fffd}\u{fffd}\u{fffd}\n",
        "%PDF-1.4 obj << stream\n",
        "\u{7f}ELF\u{2}\u{1}\u{1}\n",
    ];
    for format in ALL_FORMATS {
        for g in garbage {
            assert!(format.parse(g).is_err(), "{format:?} accepted {g:?}");
        }
    }
    // The binary container rejects the same noise (and text) outright.
    assert!(decode_dataset_v2(b"\x00\x01\x02\x03").is_err());
    assert!(decode_dataset_v2(b"chr1\t0\t10\n").is_err());
    assert!(decode_dataset_v2(b"").is_err());
}

/// Reference container bytes for truncation/corruption properties.
fn v2_container_bytes() -> Vec<u8> {
    let mut ds = Dataset::new(
        "CORPUS",
        Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap(),
    );
    ds.add_sample(
        Sample::new("s1", "CORPUS")
            .with_regions(vec![
                GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![Value::Float(0.5)]),
                GRegion::new("chr2", 5, 25, Strand::Neg).with_values(vec![Value::Null]),
            ])
            .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
    )
    .unwrap();
    encode_dataset_v2(&ds).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic any text parser: lossy-decoded input
    /// either parses (e.g. all-whitespace) or errors.
    #[test]
    fn text_parsers_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        for format in ALL_FORMATS {
            let _ = format.parse(&text); // must return, not panic
        }
    }

    /// Truncating a valid document at any byte never panics; the result
    /// is a clean parse or a typed error.
    #[test]
    fn text_parsers_never_panic_on_truncation(cut in 0usize..100) {
        for format in ALL_FORMATS {
            let doc = valid_doc(format);
            let cut = cut.min(doc.len()); // documents are ASCII: any cut is a char boundary
            let _ = format.parse(&doc[..cut]);
        }
    }

    /// The binary container survives truncation at every prefix length:
    /// always a typed error (or a clean decode for a lucky prefix),
    /// never a panic or unbounded allocation.
    #[test]
    fn native_v2_never_panics_on_truncation(frac in 0.0f64..1.0) {
        let bytes = v2_container_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(decode_dataset_v2(&bytes[..cut]).is_err(), "truncated container decoded");
    }

    /// Flipping bytes anywhere in a valid container never panics.
    #[test]
    fn native_v2_never_panics_on_corruption(
        edits in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let mut bytes = v2_container_bytes();
        for (pos, val) in edits {
            let len = bytes.len();
            bytes[pos % len] = val;
        }
        let _ = decode_dataset_v2(&bytes); // must return, not panic
    }

    /// Pure binary noise never panics the container decoder.
    #[test]
    fn native_v2_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_dataset_v2(&bytes);
    }

    /// Any single bit flip in a current (revision 3, checksummed)
    /// container is rejected by the full decode as a typed
    /// `ChecksumMismatch` — never a panic, never silent garbage. The
    /// only exemption is bit 0 of the version byte (offset 8), which
    /// downgrades the container to the checksum-free legacy revision
    /// (see docs/storage.md).
    #[test]
    fn v3_bit_flips_yield_checksum_mismatch(pos in 0usize..4096, bit in 0u8..8) {
        let mut bytes = v2_container_bytes();
        let len = bytes.len();
        let pos = pos % len;
        bytes[pos] ^= 1 << bit;
        let result = decode_dataset_v2(&bytes);
        if pos == 8 && bit == 0 {
            // Version byte 3 -> 2: the documented undetectable downgrade.
            return Ok(());
        }
        if pos < 9 {
            // Magic or version byte: rejected as a structural error.
            prop_assert!(result.is_err(), "corrupted header decoded");
        } else {
            prop_assert!(
                matches!(result, Err(nggc::formats::FormatError::ChecksumMismatch { .. })),
                "flip at {pos} bit {bit} not caught by checksum: {result:?}"
            );
        }
    }

    /// Truncating a checksummed container at any point keeps yielding a
    /// typed error; a cut that leaves the trailer malformed or absent
    /// can never decode cleanly.
    #[test]
    fn v3_truncation_always_errors(frac in 0.0f64..1.0) {
        let bytes = v2_container_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(decode_dataset_v2(&bytes[..cut]).is_err(), "truncated container decoded");
    }

    /// Scan-pruning oracle: for randomized datasets and plans, a query
    /// answered through pruned loads (`RepoProvider` → chromosome/column
    /// selective container reads) must return exactly what the same
    /// query returns over full in-memory loads — and a full load issued
    /// *after* the pruned one on the same repository must still see the
    /// complete dataset (LRU poisoning regression).
    #[test]
    fn pruned_scan_query_equals_full_scan_query(
        samples in prop::collection::vec(
            prop::collection::vec((0usize..3, 0u64..5_000, 1u64..300), 0..25),
            1..4,
        ),
        template in 0usize..5,
        chrom_idx in 0usize..4,
        threshold in 0u64..3_000,
    ) {
        let chroms = ["chr1", "chr2", "chr3"];
        let query_chrom = ["chr1", "chr2", "chr3", "chrX"][chrom_idx];
        let schema = Schema::new(vec![
            Attribute::new("score", ValueType::Float),
            Attribute::new("peak", ValueType::Int),
        ])
        .unwrap();
        let mut ds = Dataset::new("D", schema);
        for (si, sample) in samples.iter().enumerate() {
            let mut regions: Vec<GRegion> = sample
                .iter()
                .enumerate()
                .map(|(ri, &(c, l, w))| {
                    GRegion::new(chroms[c], l, l + w, Strand::Pos).with_values(vec![
                        Value::Float((ri as f64) * 0.25),
                        Value::Int(ri as i64),
                    ])
                })
                .collect();
            regions.sort_by(|a, b| a.cmp_coords(b));
            ds.add_sample(
                Sample::new(format!("s{si}"), "D")
                    .with_regions(regions)
                    .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
            )
            .unwrap();
        }

        let query = match template {
            0 => format!("X = SELECT(region: chr == '{query_chrom}') D; MATERIALIZE X;"),
            1 => format!(
                "X = SELECT(region: chr == '{query_chrom}' AND left > {threshold}) D; \
                 MATERIALIZE X;"
            ),
            2 => "X = PROJECT(score) D; MATERIALIZE X;".to_owned(),
            3 => format!(
                "R = SELECT(region: chr == '{query_chrom}') D; \
                 M = MAP(n AS COUNT, a AS AVG(score)) R D; MATERIALIZE M;"
            ),
            _ => format!(
                "X = SELECT(region: chr == '{query_chrom}' OR chr == 'chr1') D; \
                 MATERIALIZE X;"
            ),
        };

        static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "nggc_prune_oracle_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        ));
        std::fs::remove_dir_all(&root).ok();
        let mut repo = nggc::repository::Repository::open(&root).unwrap();
        repo.save(&ds).unwrap();
        // Reopen so the pruned run starts from a cold LRU: `save` seeds
        // the cache, and a warm cache would serve full supersets.
        let repo = nggc::repository::Repository::open(&root).unwrap();

        let ctx = nggc::engine::ExecContext::with_workers(2);
        let opts = nggc::gmql::ExecOptions::default();
        let schema_of = |name: &str| repo.schema_of(name);
        // Canonical rendering that ignores the process-global sample id
        // counter (fresh ids are minted per materialised sample).
        let strip_ids = |ds: &Dataset| {
            let mut s = format!("{}|{}", ds.name, ds.schema);
            for smp in &ds.samples {
                s.push_str(&format!("\n{}|{:?}", smp.name, smp.metadata));
                for r in &smp.regions {
                    s.push_str(&format!(
                        "\n  {} {} {} {:?} {:?}",
                        r.chrom, r.left, r.right, r.strand, r.values
                    ));
                }
            }
            s
        };
        let canon = |outputs: &std::collections::HashMap<String, Dataset>| {
            let mut names: Vec<&String> = outputs.keys().collect();
            names.sort();
            names
                .iter()
                .map(|n| format!("{n}={}", strip_ids(&outputs[*n])))
                .collect::<Vec<_>>()
                .join("\n")
        };

        // Reference: full in-memory loads (closure providers never prune).
        let full_ds = ds.clone();
        let full_provider = move |name: &str| {
            if name == "D" {
                Ok(full_ds.clone())
            } else {
                Err(nggc::gmql::GmqlError::runtime(format!("unknown dataset {name}")))
            }
        };
        let reference = nggc::gmql::run_with_provider(
            &query, &schema_of, &full_provider, &ctx, &opts,
        )
        .unwrap();

        // Pruned: the repository provider pushes the derived ScanSpec
        // into the v2 container read.
        let pruned_provider = nggc::RepoProvider::new(&repo);
        let pruned = nggc::gmql::run_with_provider(
            &query, &schema_of, &pruned_provider, &ctx, &opts,
        )
        .unwrap();
        prop_assert_eq!(canon(&reference), canon(&pruned), "query: {}", query);

        // Poisoning regression: a full load on the same repository after
        // the pruned run must see the complete dataset.
        let full_after = repo.load("D").unwrap();
        prop_assert_eq!(
            strip_ids(&ds),
            strip_ids(&full_after),
            "pruned load leaked a partial dataset into the cache"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    /// Legacy (revision 2, checksum-free) containers written by the
    /// previous release still decode to identical content.
    #[test]
    fn legacy_v2_containers_decode_under_v3_reader(extra_regions in 0usize..16) {
        let mut ds = Dataset::new(
            "LEGACY",
            Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap(),
        );
        let mut regions = vec![
            GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![Value::Float(0.5)]),
        ];
        for i in 0..extra_regions {
            regions.push(
                GRegion::new("chr2", (i as u64) * 10, (i as u64) * 10 + 5, Strand::Neg)
                    .with_values(vec![Value::Null]),
            );
        }
        ds.add_sample(Sample::new("s1", "LEGACY").with_regions(regions)).unwrap();
        let legacy = nggc::formats::native_v2::encode_dataset_v2_legacy(&ds).unwrap();
        let decoded = decode_dataset_v2(&legacy).unwrap();
        prop_assert_eq!(&decoded.name, &ds.name);
        prop_assert_eq!(&decoded.schema, &ds.schema);
        prop_assert_eq!(decoded.samples.len(), ds.samples.len());
        prop_assert_eq!(
            decoded.samples[0].region_count(),
            ds.samples[0].region_count()
        );
        prop_assert_eq!(decoded.stats(), ds.stats());
    }
}
