//! Operator conformance: every GMQL operator exercised through query
//! text with exact expected outputs (a black-box specification of the
//! algebra's semantics).

use nggc::gdm::*;
use nggc::gmql::GmqlEngine;

/// A small, fully hand-checked world:
///
/// GENES (annType/name schema): one sample, 3 genes on chr1.
/// PEAKS (score schema): two samples, HeLa (3 peaks) and K562 (2 peaks).
fn engine() -> GmqlEngine {
    let mut engine = GmqlEngine::with_workers(2);

    let genes_schema = Schema::new(vec![
        Attribute::new("annType", ValueType::Str),
        Attribute::new("name", ValueType::Str),
    ])
    .unwrap();
    let mut genes = Dataset::new("GENES", genes_schema);
    genes
        .add_sample(
            Sample::new("ref", "GENES")
                .with_regions(vec![
                    GRegion::new("chr1", 100, 200, Strand::Pos)
                        .with_values(vec!["gene".into(), "A".into()]),
                    GRegion::new("chr1", 400, 500, Strand::Neg)
                        .with_values(vec!["gene".into(), "B".into()]),
                    GRegion::new("chr1", 800, 900, Strand::Pos)
                        .with_values(vec!["gene".into(), "C".into()]),
                ])
                .with_metadata(Metadata::from_pairs([("source", "ucsc")])),
        )
        .unwrap();
    engine.register(genes);

    let peaks_schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
    let mut peaks = Dataset::new("PEAKS", peaks_schema);
    peaks
        .add_sample(
            Sample::new("hela", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 120, 140, Strand::Unstranded)
                        .with_values(vec![5.0.into()]),
                    GRegion::new("chr1", 150, 260, Strand::Unstranded)
                        .with_values(vec![7.0.into()]),
                    GRegion::new("chr1", 600, 650, Strand::Unstranded)
                        .with_values(vec![1.0.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa"), ("age", "30")])),
        )
        .unwrap();
    peaks
        .add_sample(
            Sample::new("k562", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 410, 450, Strand::Unstranded)
                        .with_values(vec![9.0.into()]),
                    GRegion::new("chr1", 860, 880, Strand::Unstranded)
                        .with_values(vec![3.0.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "K562"), ("age", "20")])),
        )
        .unwrap();
    engine.register(peaks);
    engine
}

fn run1(q: &str) -> Dataset {
    let engine = engine();
    let out = engine.run(q).unwrap();
    assert_eq!(out.len(), 1);
    out.into_values().next().unwrap()
}

#[test]
fn select_meta_and_region_combined() {
    let d = run1("X = SELECT(cell == 'HeLa'; region: score >= 6) PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 1);
    assert_eq!(d.samples[0].region_count(), 1);
    assert_eq!(d.samples[0].regions[0].left, 150);
}

#[test]
fn project_computed_midpoint() {
    let d = run1("X = PROJECT(score, mid AS left + (right - left) / 2) PEAKS; MATERIALIZE X;");
    assert_eq!(d.schema.len(), 2);
    let r0 = &d.samples[0].regions[0];
    assert_eq!(r0.values[1], Value::Float(130.0));
}

#[test]
fn extend_lifts_aggregates_to_metadata() {
    let d = run1(
        "X = EXTEND(n AS COUNT, total AS SUM(score), best AS MAX(score)) PEAKS; MATERIALIZE X;",
    );
    let hela = d.sample_by_name("hela").unwrap();
    assert_eq!(hela.metadata.first("n"), Some("3"));
    assert_eq!(hela.metadata.first("total"), Some("13"));
    assert_eq!(hela.metadata.first("best"), Some("7"));
    let k562 = d.sample_by_name("k562").unwrap();
    assert_eq!(k562.metadata.first("total"), Some("12"));
}

#[test]
fn merge_flattens_samples() {
    let d = run1("X = MERGE() PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 1);
    assert_eq!(d.samples[0].region_count(), 5);
    assert!(d.samples[0].metadata.has("cell", "HeLa"));
    assert!(d.samples[0].metadata.has("cell", "K562"));
}

#[test]
fn group_by_cell_keeps_two_groups() {
    let d = run1("X = GROUP(cell) PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 2);
}

#[test]
fn order_top1_by_age_desc() {
    let d = run1("X = ORDER(age DESC; top: 1) PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 1);
    assert_eq!(d.samples[0].name, "hela");
    assert_eq!(d.samples[0].metadata.first("order"), Some("1"));
}

#[test]
fn order_region_top_by_score() {
    let d = run1("X = ORDER(region: score DESC; region_top: 1) PEAKS; MATERIALIZE X;");
    let hela = d.sample_by_name("hela").unwrap();
    assert_eq!(hela.region_count(), 1);
    assert_eq!(hela.regions[0].values[0], Value::Float(7.0));
}

#[test]
fn union_concatenates_with_merged_schema() {
    let d = run1("X = UNION() GENES PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 3);
    assert_eq!(d.schema.len(), 3, "annType + name + score");
    d.validate().unwrap();
}

#[test]
fn difference_removes_peak_overlapping_genes() {
    let d = run1("X = DIFFERENCE() PEAKS GENES; MATERIALIZE X;");
    // HeLa: peaks at 120 and 150 overlap gene A [100,200); 600 survives.
    let hela = d.sample_by_name("hela").unwrap();
    assert_eq!(hela.region_count(), 1);
    assert_eq!(hela.regions[0].left, 600);
    // K562: 410 overlaps gene B; 860 overlaps gene C; nothing survives.
    let k562 = d.sample_by_name("k562").unwrap();
    assert_eq!(k562.region_count(), 0);
}

#[test]
fn join_left_within_distance() {
    let d = run1("X = JOIN(DLE(50); output: LEFT) GENES PEAKS; MATERIALIZE X;");
    // Pairs within 50bp per (genes, peaks-sample):
    // hela: A-120(ov), A-150(ov), B? 400-500 vs 600-650: d=100 no.
    // k562: B-410(ov), C-860(ov).
    assert_eq!(d.sample_count(), 2);
    let hela = d.samples.iter().find(|s| s.name.contains("hela")).unwrap();
    assert_eq!(hela.region_count(), 2);
    let k562 = d.samples.iter().find(|s| s.name.contains("k562")).unwrap();
    assert_eq!(k562.region_count(), 2);
    // Output regions use the LEFT (gene) coordinates.
    assert!(hela.regions.iter().all(|r| r.len() == 100));
}

#[test]
fn join_min_distance_single_nearest() {
    let d = run1("X = JOIN(MD(1); output: RIGHT) GENES PEAKS; MATERIALIZE X;");
    let hela = d.samples.iter().find(|s| s.name.contains("hela")).unwrap();
    // Gene A → nearest hela peak overlaps (120); gene B → 600 peak (d=100);
    // gene C → 600 peak (d=150). MD(1) emits one pair per gene.
    assert_eq!(hela.region_count(), 3);
}

#[test]
fn map_counts_per_pair() {
    let d = run1("X = MAP(n AS COUNT) GENES PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 2);
    let hela = d.samples.iter().find(|s| s.name.contains("hela")).unwrap();
    let counts: Vec<i64> =
        hela.regions.iter().map(|r| r.values.last().unwrap().as_i64().unwrap()).collect();
    assert_eq!(counts, vec![2, 0, 0]);
    let k562 = d.samples.iter().find(|s| s.name.contains("k562")).unwrap();
    let counts: Vec<i64> =
        k562.regions.iter().map(|r| r.values.last().unwrap().as_i64().unwrap()).collect();
    assert_eq!(counts, vec![0, 1, 1]);
}

#[test]
fn cover_and_variants() {
    // Peaks across both samples: [120,140) [150,260) [410,450) [600,650) [860,880).
    // No overlaps between samples, so COVER(2,ANY) is empty but
    // COVER(1,ANY) merges nothing and returns all five.
    let d = run1("X = COVER(2, ANY) PEAKS; MATERIALIZE X;");
    assert_eq!(d.samples[0].region_count(), 0);
    let d = run1("X = COVER(1, ANY) PEAKS; MATERIALIZE X;");
    assert_eq!(d.samples[0].region_count(), 5);
    let d = run1("X = HISTOGRAM(1, ANY) PEAKS; MATERIALIZE X;");
    assert_eq!(d.samples[0].region_count(), 5);
    let acc_pos = d.schema.position("accindex").unwrap();
    assert!(d.samples[0].regions.iter().all(|r| r.values[acc_pos] == Value::Int(1)));
}

#[test]
fn cover_groupby_cell() {
    let d = run1("X = COVER(1, ANY; groupby: cell) PEAKS; MATERIALIZE X;");
    assert_eq!(d.sample_count(), 2);
    let hela = d.samples.iter().find(|s| s.metadata.has("cell", "HeLa")).unwrap();
    assert_eq!(hela.region_count(), 3);
}

#[test]
fn multiple_materialize_outputs() {
    let engine = engine();
    let out = engine
        .run(
            "A = SELECT(cell == 'HeLa') PEAKS;
             B = SELECT(cell == 'K562') PEAKS;
             MATERIALIZE A INTO hela_out;
             MATERIALIZE B INTO k562_out;",
        )
        .unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out["hela_out"].sample_count(), 1);
    assert_eq!(out["k562_out"].sample_count(), 1);
}

#[test]
fn pipeline_depth_and_reuse() {
    // One variable consumed by two operators (DAG, not tree).
    let engine = engine();
    let out = engine
        .run(
            "P  = SELECT(region: score > 2) PEAKS;
             M  = MAP(n AS COUNT) GENES P;
             J  = JOIN(DLE(0); output: LEFT) GENES P;
             MATERIALIZE M;
             MATERIALIZE J;",
        )
        .unwrap();
    assert_eq!(out.len(), 2);
    assert!(out["M"].region_count() > 0);
    assert!(out["J"].region_count() > 0);
}

#[test]
fn empty_intermediate_propagates() {
    let engine = engine();
    let out = engine
        .run(
            "E = SELECT(cell == 'NOPE') PEAKS;
             M = MAP(n AS COUNT) GENES E;
             MATERIALIZE M;",
        )
        .unwrap();
    assert_eq!(out["M"].sample_count(), 0, "no experiment samples, no pairs");
}

#[test]
fn flat_extends_and_summit_peaks() {
    // Overlapping synthetic sample: build a dedicated engine.
    let mut engine = GmqlEngine::with_workers(2);
    let schema = Schema::empty();
    let mut ds = Dataset::new("R", schema);
    for (name, l, r) in [("a", 0u64, 80u64), ("b", 50u64, 100u64), ("c", 40u64, 90u64)] {
        ds.add_sample(Sample::new(name, "R").with_regions(vec![GRegion::new(
            "chr1",
            l,
            r,
            Strand::Unstranded,
        )]))
        .unwrap();
    }
    engine.register(ds);
    let flat = engine.run("X = FLAT(3, ANY) R; MATERIALIZE X;").unwrap();
    let r = &flat["X"].samples[0].regions[0];
    assert_eq!((r.left, r.right), (0, 100), "hull of all contributors");
    let summit = engine.run("X = SUMMIT(1, ANY) R; MATERIALIZE X;").unwrap();
    let s = &summit["X"].samples[0].regions[0];
    assert_eq!((s.left, s.right), (50, 80), "acc-3 core");
}
