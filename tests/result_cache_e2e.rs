//! End-to-end tests for the query result cache (docs/caching.md):
//! the serve-side in-memory layer (plan-fingerprint keyed, single
//! flight, generation invalidation) and the CLI's on-disk layer under
//! `<repo>/result_cache`.

#[path = "common/watchdog.rs"]
mod watchdog;

use nggc::gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, ValueType};
use nggc::repository::Repository;
use nggc::server::{Client, ServeConfig, ServeStats, Server, ServerHandle, ServerReply};
use std::path::PathBuf;
use std::process::Command;
use watchdog::with_watchdog;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nggc_rcache_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset(name: &str, regions: usize) -> Dataset {
    let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
    let mut ds = Dataset::new(name, schema);
    let regions: Vec<GRegion> = (0..regions)
        .map(|i| {
            GRegion::new("chr1", (i * 100) as u64, (i * 100 + 50) as u64, Strand::Pos)
                .with_values(vec![(i as f64).into()])
        })
        .collect();
    ds.add_sample(
        Sample::new("s1", name)
            .with_regions(regions)
            .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
    )
    .unwrap();
    ds
}

fn repo_with(tag: &str, name: &str) -> (PathBuf, Repository) {
    let root = tmp(tag);
    {
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset(name, 64)).unwrap();
    }
    (root.clone(), Repository::open(&root).unwrap())
}

fn start(
    repo: Repository,
    config: ServeConfig,
) -> (String, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", repo, config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn stats(client: &mut Client) -> ServeStats {
    match client.stats().unwrap() {
        ServerReply::Stats(s) => s,
        other => panic!("expected Stats, got {other:?}"),
    }
}

#[test]
fn identical_requery_is_answered_from_cache() {
    with_watchdog("rcache_hit", 60, || {
        let (root, repo) = repo_with("hit", "PEAKS");
        let (addr, handle, runner) = start(repo, ServeConfig::default());
        let mut client = Client::connect(&addr).unwrap();

        let q = "A = SELECT() PEAKS; R = SELECT(region: score >= 0) A; MATERIALIZE R;";
        match client.query(q, None, None, 2).unwrap() {
            ServerReply::Result { cached, outputs, .. } => {
                assert!(!cached, "first run must execute");
                assert_eq!(outputs[0].regions, 64);
            }
            other => panic!("expected Result, got {other:?}"),
        }
        // Different whitespace and a renamed intermediate variable, same
        // optimized plan and same materialized name: the fingerprint
        // must collide on purpose.
        let respelled =
            "B  =  SELECT()   PEAKS;\nR = SELECT(region: score >= 0) B;\nMATERIALIZE R;";
        match client.query(respelled, None, None, 2).unwrap() {
            ServerReply::Result { cached, outputs, trace_id, .. } => {
                assert!(cached, "respelled re-query must be a cache hit");
                assert!(trace_id != 0, "hits still carry a trace id");
                assert_eq!(outputs[0].regions, 64, "cached reply carries the same outputs");
            }
            other => panic!("expected Result, got {other:?}"),
        }
        let s = stats(&mut client);
        assert_eq!(s.result_cache_hits, 1, "{s:?}");
        assert_eq!(s.result_cache_misses, 1, "{s:?}");
        assert_eq!(s.result_cache_entries, 1, "{s:?}");
        assert!(s.result_cache_bytes > 0 && s.result_cache_bytes <= s.result_cache_capacity);

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn concurrent_identical_misses_coalesce_into_one_execution() {
    with_watchdog("rcache_coalesce", 60, || {
        let (root, repo) = repo_with("coalesce", "COAL");
        let (addr, handle, runner) = start(repo, ServeConfig::default());

        const N: usize = 10;
        let clients: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.query("R = SELECT() COAL; MATERIALIZE R;", None, None, 0).unwrap()
                })
            })
            .collect();
        for c in clients {
            match c.join().unwrap() {
                ServerReply::Result { outputs, .. } => assert_eq!(outputs[0].regions, 64),
                other => panic!("expected Result, got {other:?}"),
            }
        }
        let mut client = Client::connect(&addr).unwrap();
        let s = stats(&mut client);
        assert_eq!(s.result_cache_misses, 1, "exactly one execution: {s:?}");
        assert_eq!(
            s.result_cache_hits + s.result_cache_coalesced,
            (N - 1) as u64,
            "everyone else rides it: {s:?}"
        );

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn no_cache_bypasses_lookup_and_population() {
    with_watchdog("rcache_bypass", 60, || {
        let (root, repo) = repo_with("bypass", "BYP");
        let (addr, handle, runner) = start(repo, ServeConfig::default());
        let mut client = Client::connect(&addr).unwrap();

        let q = "R = SELECT() BYP; MATERIALIZE R;";
        for _ in 0..2 {
            match client.query_full(q, None, None, 0, true).unwrap() {
                ServerReply::Result { cached, .. } => assert!(!cached, "no_cache must execute"),
                other => panic!("expected Result, got {other:?}"),
            }
        }
        let s = stats(&mut client);
        assert_eq!(s.result_cache_hits, 0, "{s:?}");
        assert_eq!(s.result_cache_misses, 0, "bypass never consults the cache: {s:?}");
        assert_eq!(s.result_cache_entries, 0, "bypass never populates: {s:?}");

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn results_larger_than_the_budget_are_never_cached() {
    with_watchdog("rcache_oversize", 60, || {
        let (root, repo) = repo_with("oversize", "BIG");
        // A 64-byte cache cannot hold any real result; every request
        // must execute and the cache must stay empty.
        let config = ServeConfig { result_cache_bytes: 64, ..ServeConfig::default() };
        let (addr, handle, runner) = start(repo, config);
        let mut client = Client::connect(&addr).unwrap();

        let q = "R = SELECT() BIG; MATERIALIZE R;";
        for _ in 0..2 {
            match client.query(q, None, None, 0).unwrap() {
                ServerReply::Result { cached, .. } => assert!(!cached),
                other => panic!("expected Result, got {other:?}"),
            }
        }
        let s = stats(&mut client);
        assert_eq!(s.result_cache_entries, 0, "{s:?}");
        assert_eq!(s.result_cache_bytes, 0, "{s:?}");
        assert_eq!(s.result_cache_misses, 2, "both runs executed: {s:?}");
        assert_eq!(s.result_cache_capacity, 64, "{s:?}");

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn save_delete_and_migrate_invalidate_cached_results() {
    with_watchdog("rcache_invalidate", 60, || {
        // Component-level: the in-memory cache revalidates entries
        // against the repository's generation counters on every lookup,
        // so any mutation path that bumps (or removes) a generation
        // invalidates without explicit hooks.
        let root = tmp("invalidate");
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("GENES", 8)).unwrap();

        let cache = nggc::gmql::ResultCache::new(1 << 20);
        let key = 0xfeed;
        let outputs: std::collections::HashMap<String, Dataset> =
            [("R".to_owned(), dataset("R", 1))].into();

        let fill = |repo: &Repository| {
            let gens = vec![("GENES".to_owned(), repo.generation("GENES").unwrap())];
            cache.insert(key, gens, std::sync::Arc::new(outputs.clone()));
            assert!(cache.lookup(key, &|n| repo.generation(n)).is_some(), "fresh entry must hit");
        };

        // Save bumps the generation → stale.
        fill(&repo);
        repo.save(&dataset("GENES", 9)).unwrap();
        assert!(cache.lookup(key, &|n| repo.generation(n)).is_none(), "save must invalidate");

        // Migrate rewrites through save → stale.
        fill(&repo);
        repo.migrate("GENES").unwrap();
        assert!(cache.lookup(key, &|n| repo.generation(n)).is_none(), "migrate must invalidate");

        // Delete removes the generation entirely → stale, and a
        // recreated dataset never reuses the old generation.
        fill(&repo);
        let gen_before = repo.generation("GENES").unwrap();
        repo.delete("GENES").unwrap();
        assert!(cache.lookup(key, &|n| repo.generation(n)).is_none(), "delete must invalidate");
        repo.save(&dataset("GENES", 8)).unwrap();
        assert!(repo.generation("GENES").unwrap() > gen_before, "generations never reused");

        let stats = cache.stats();
        assert_eq!(stats.invalidations, 3, "{stats:?}");
        std::fs::remove_dir_all(&root).ok();
    });
}

/// Drive the real binary: the CLI's on-disk result cache answers the
/// second invocation of an identical query across processes, and an
/// import (save) invalidates it.
#[test]
fn cli_disk_cache_hits_across_processes_and_invalidates_on_import() {
    with_watchdog("rcache_cli", 120, || {
        let root = tmp("cli");
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("PEAKS", 16)).unwrap();
        }
        let run = |args: &[&str]| {
            let out = Command::new(env!("CARGO_BIN_EXE_nggc"))
                .arg("--repo")
                .arg(&root)
                .args(args)
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "nggc {args:?} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8_lossy(&out.stdout).into_owned()
        };

        let q = "R = SELECT() PEAKS; MATERIALIZE R;";
        let first = run(&["query", "-e", q]);
        assert!(!first.contains("cached"), "first run executes:\n{first}");
        let second = run(&["query", "-e", q]);
        assert!(second.contains(", cached)"), "second run hits the disk cache:\n{second}");
        assert!(root.join("result_cache").is_dir(), "store lives under the repository root");
        // --no-cache bypasses even a warm store.
        let bypassed = run(&["query", "--no-cache", "-e", q]);
        assert!(!bypassed.contains("cached"), "--no-cache executes:\n{bypassed}");

        // A mutation of the source dataset invalidates: import appends
        // a sample to PEAKS, bumping its generation.
        let bed = root.join("peaks.bed");
        std::fs::write(&bed, "chr1\t10\t20\tname\t5\t+\n").unwrap();
        run(&["import", bed.to_str().unwrap(), "PEAKS"]);
        let after = run(&["query", "-e", q]);
        assert!(!after.contains(", cached)"), "stale entry must not answer after import:\n{after}");

        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn cache_hits_skip_admission_even_when_the_pool_is_pinned() {
    with_watchdog("rcache_pinned", 60, || {
        let (root, repo) = repo_with("pinned", "PIN");
        let (addr, handle, runner) = start(repo, ServeConfig::default());
        let mut client = Client::connect(&addr).unwrap();

        let q = "R = SELECT() PIN; MATERIALIZE R;";
        match client.query(q, None, None, 0).unwrap() {
            ServerReply::Result { cached, .. } => assert!(!cached),
            other => panic!("expected Result, got {other:?}"),
        }
        // Pin the entire pool: an executing query could not reserve a
        // single byte, but a hit never touches the pool. (The cached
        // entry's bytes were carved from the pool at insert time, so pin
        // whatever remains.)
        let pool = handle.memory_pool();
        let remaining = pool.capacity() - pool.reserved();
        let _pin = pool.reserve(remaining).unwrap();
        match client.query(q, None, None, 0).unwrap() {
            ServerReply::Result { cached, .. } => assert!(cached, "hit despite exhausted pool"),
            other => panic!("expected Result, got {other:?}"),
        }

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}

#[test]
fn cache_yields_bytes_back_to_the_pool_under_query_pressure() {
    with_watchdog("rcache_shrink", 60, || {
        let (root, repo) = repo_with("shrink", "SHR");
        // Pool and cache share the same small arena, so the cached
        // entry plus a full-pool budget request cannot coexist.
        let config = ServeConfig {
            mem_pool_bytes: 1 << 20,
            result_cache_bytes: 1 << 20,
            ..ServeConfig::default()
        };
        let (addr, handle, runner) = start(repo, config);
        let mut client = Client::connect(&addr).unwrap();

        let q = "R = SELECT() SHR; MATERIALIZE R;";
        match client.query(q, None, None, 0).unwrap() {
            ServerReply::Result { cached, .. } => assert!(!cached),
            other => panic!("expected Result, got {other:?}"),
        }
        let cached_bytes = stats(&mut client).result_cache_bytes;
        assert!(cached_bytes > 0, "result landed in the cache");
        // A fresh (different) query asking for the whole pool forces the
        // cache to evict; queries outrank cached results.
        let big = "R = SELECT() SHR; S = SELECT(region: score > 1) R; MATERIALIZE S;";
        match client.query_full(big, None, Some(1 << 20), 0, true).unwrap() {
            ServerReply::Result { .. } | ServerReply::Error { .. } => {}
            other => panic!("unexpected reply {other:?}"),
        }
        let s = stats(&mut client);
        assert_eq!(s.result_cache_bytes, 0, "cache yielded its bytes: {s:?}");
        assert!(s.result_cache_evictions >= 1, "{s:?}");
        assert_eq!(handle.memory_pool().reserved(), 0, "pool drains after the query");

        handle.shutdown();
        runner.join().unwrap().unwrap();
        std::fs::remove_dir_all(&root).ok();
    });
}
