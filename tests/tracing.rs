//! Cross-node trace stitching: a federated query run under one
//! [`TraceContext`] must yield a single span tree containing spans
//! recorded on every answering node, stitched under the coordinator's
//! `fed.call` spans with per-node attribution — including when a node
//! never answers and its spans are lost (see docs/observability.md).

use nggc::federation::{CallPolicy, ChaosConfig, ChaosNode, Federation, FederationNode};
use nggc::gdm::{Attribute, Dataset, GRegion, Metadata, Sample, Schema, Strand, ValueType};
use nggc::obs::{self, MemorySubscriber, SpanRecord};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[path = "common/watchdog.rs"]
mod watchdog;
use watchdog::with_watchdog;

// Span subscribers are process-global; serialize the tests in this
// binary so collectors never see each other's spans.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn dataset(name: &str, samples: usize, regions_per_sample: usize) -> Dataset {
    let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
    let mut ds = Dataset::new(name, schema);
    for i in 0..samples {
        let regions = (0..regions_per_sample)
            .map(|j| {
                GRegion::new("chr1", (j * 500) as u64, (j * 500 + 100) as u64, Strand::Unstranded)
                    .with_values(vec![0.01.into()])
            })
            .collect();
        ds.add_sample(
            Sample::new(format!("s{i}"), name)
                .with_regions(regions)
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
    }
    ds
}

fn policy() -> CallPolicy {
    CallPolicy {
        deadline: Duration::from_millis(200),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        jitter_seed: 1,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
    }
}

/// Run `f` with a fresh collector inside a fresh trace; return the
/// captured records plus the trace id they should all carry.
fn traced<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>, u64) {
    obs::clear_subscribers();
    let collector = Arc::new(MemorySubscriber::default());
    obs::add_subscriber(collector.clone());
    let tc = obs::TraceContext::new();
    let out = {
        let _trace = tc.enter();
        f()
    };
    obs::clear_subscribers();
    (out, collector.records(), tc.trace_id)
}

#[test]
fn federated_query_stitches_spans_from_all_three_nodes() {
    let _guard = global_lock();
    let ((), records, trace_id) = with_watchdog("stitch_healthy", 60, || {
        traced(|| {
            let mut fed = Federation::with_policy(policy());
            let mut alpha = FederationNode::new("alpha", 2);
            alpha.own(dataset("BULK", 4, 40));
            fed.add_node(alpha);
            let mut beta = FederationNode::new("beta", 2);
            beta.own(dataset("SMALL", 1, 4));
            fed.add_node(beta);
            let mut gamma = FederationNode::new("gamma", 2);
            gamma.own(dataset("ELSEWHERE", 1, 4));
            fed.add_node(gamma);

            let outcome = fed
                .execute_distributed_degraded(
                    "R = MAP(n AS COUNT) SMALL BULK;\nMATERIALIZE R;",
                    32 * 1024,
                )
                .expect("healthy federation executes");
            assert_eq!(outcome.outputs["R"].sample_count(), 4);
        })
    });

    // One trace: every span — coordinator-side and shipped — carries
    // the coordinator's trace id.
    assert!(!records.is_empty());
    for r in &records {
        assert_eq!(r.trace_id, trace_id, "span {} left the trace", r.name);
    }

    // Spans from all three nodes are present (gamma answers discovery
    // even though it owns no queried data).
    for node in ["alpha", "beta", "gamma"] {
        assert!(
            records.iter().any(|r| r.name == "node.serve" && r.field("node") == Some(node)),
            "no node.serve span shipped from {node}"
        );
    }

    // Correct parent/child edges: every shipped node.serve span hangs
    // off a coordinator fed.call span for the same node.
    for serve in records.iter().filter(|r| r.name == "node.serve") {
        let parent_id = serve.parent.expect("node.serve is stitched, not a root");
        let parent = records
            .iter()
            .find(|r| r.id == parent_id)
            .expect("parent of a shipped span is a recorded coordinator span");
        assert_eq!(parent.name, "fed.call");
        assert_eq!(parent.field("node"), serve.field("node"), "stitched under the wrong call");
        assert_eq!(parent.trace_id, trace_id);
    }

    // The remote execution's operator spans arrive attributed to the
    // executing node and parented inside its node.serve span.
    let exec = records
        .iter()
        .find(|r| r.name == "exec.plan")
        .expect("remote execution shipped its exec.plan span");
    assert_eq!(exec.field("node"), Some("alpha"), "host node executes the plan");
    let serve_ids: Vec<u64> = records
        .iter()
        .filter(|r| r.name == "node.serve" && r.field("node") == Some("alpha"))
        .map(|r| r.id)
        .collect();
    assert!(
        exec.parent.is_some_and(|p| serve_ids.contains(&p)),
        "exec.plan nests inside alpha's node.serve span"
    );

    // Ids are unique after stitching — re-emission never collides with
    // coordinator-side ids.
    let mut ids: Vec<u64> = records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), records.len());
}

#[test]
fn hung_node_contributes_no_spans_but_trace_survives_degraded() {
    let _guard = global_lock();
    let ((), records, trace_id) = with_watchdog("stitch_degraded", 60, || {
        traced(|| {
            let mut fed = Federation::with_policy(policy());
            let mut alpha = FederationNode::new("alpha", 2);
            alpha.own(dataset("BULK", 4, 40));
            fed.add_node(alpha);
            let mut hung = FederationNode::new("hung", 2);
            hung.own(dataset("ELSEWHERE", 1, 4));
            // Sleeps past the deadline on every request: replies (and the
            // spans piggybacked on them) never reach the coordinator.
            fed.add_node(ChaosNode::new(hung, ChaosConfig::hung(Duration::from_millis(500))));

            let outcome = fed
                .execute_distributed_degraded("R = SELECT() BULK;\nMATERIALIZE R;", 32 * 1024)
                .expect("degraded execution still completes");
            assert_eq!(outcome.outputs["R"].sample_count(), 4);
        })
    });

    // The trace is intact and still single-trace…
    assert!(!records.is_empty());
    for r in &records {
        assert_eq!(r.trace_id, trace_id);
    }
    // …the healthy node's spans arrived…
    assert!(records.iter().any(|r| r.name == "node.serve" && r.field("node") == Some("alpha")));
    // …and the hung node shipped nothing: its fed.call spans are
    // recorded (the coordinator owns those) but childless.
    assert!(
        !records.iter().any(|r| r.field("node") == Some("hung") && r.name != "fed.call"),
        "a span escaped a node that never answered"
    );
    for call in records.iter().filter(|r| r.name == "fed.call" && r.field("node") == Some("hung")) {
        assert!(
            !records.iter().any(|r| r.parent == Some(call.id)),
            "hung node's call span must be childless"
        );
    }
}
