//! §4.3 custom queries: every built-in template instantiates into
//! runnable GMQL and produces sensible results over synthetic data.

use nggc::gmql::GmqlEngine;
use nggc::search::CustomQueryCatalog;
use nggc::synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};
use std::collections::BTreeMap;

fn vals(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
    pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

fn engine() -> GmqlEngine {
    let genome = Genome::human(0.001);
    let mut engine = GmqlEngine::with_workers(2);
    engine.register(generate_encode(
        &genome,
        &EncodeConfig { samples: 6, mean_peaks_per_sample: 250.0, seed: 21, ..Default::default() },
    ));
    let (annotations, _) = generate_annotations(
        &genome,
        &AnnotationConfig { genes: 60, seed: 8, ..Default::default() },
    );
    engine.register(annotations);
    engine
}

#[test]
fn every_builtin_template_parses() {
    let catalog = CustomQueryCatalog::builtin();
    for template in catalog.list() {
        let params: BTreeMap<String, String> = template
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default.clone().unwrap_or_else(|| "CTCF".to_owned())))
            .collect();
        let text = template.instantiate(&params).unwrap();
        nggc::gmql::parse(&text)
            .unwrap_or_else(|e| panic!("template {} must parse: {e}\n{text}", template.name));
    }
}

#[test]
fn peaks_over_promoters_template_runs() {
    let catalog = CustomQueryCatalog::builtin();
    let q = catalog.instantiate("peaks_over_promoters", &vals(&[])).unwrap();
    let out = engine().run(&q).unwrap();
    let result = &out["RESULT"];
    assert!(result.sample_count() >= 1);
    assert!(result.schema.get("peak_count").is_some());
}

#[test]
fn consensus_peaks_template_runs() {
    let catalog = CustomQueryCatalog::builtin();
    // Use an antibody that exists in the generated vocabulary.
    let q = catalog
        .instantiate("consensus_peaks", &vals(&[("antibody", "CTCF"), ("min_replicas", "1")]))
        .unwrap();
    let out = engine().run(&q).unwrap();
    assert!(out.contains_key("CONS"));
}

#[test]
fn distal_peaks_excludes_overlaps() {
    let catalog = CustomQueryCatalog::builtin();
    let q = catalog.instantiate("distal_peaks", &vals(&[("distance", "5000")])).unwrap();
    let engine = engine();
    let out = engine.run(&q).unwrap();
    let near = &out["NEAR"];
    // The DGE(1)+DLE(5000) conjunction is evaluated per pair: every
    // emitted peak must have SOME promoter at distance in [1, 5000]
    // (it may still overlap a different promoter).
    let proms = engine
        .run(
            "REFS = SELECT(region: annType == 'promoter') ANNOTATIONS;
             MATERIALIZE REFS;",
        )
        .unwrap();
    let prom_regions: Vec<nggc::gdm::GRegion> = proms["REFS"].samples[0].regions.clone();
    let mut emitted = 0;
    for s in &near.samples {
        for r in &s.regions {
            emitted += 1;
            let qualifies = prom_regions
                .iter()
                .any(|p| p.distance(r).map(|d| (1..=5000).contains(&d)).unwrap_or(false));
            assert!(
                qualifies,
                "peak {}:{}-{} has no promoter at distance 1..=5000",
                r.chrom, r.left, r.right
            );
        }
    }
    assert!(emitted > 0, "the workload must produce distal pairs");
}
