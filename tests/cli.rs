//! End-to-end tests of the `nggc` command-line interface.

use std::path::PathBuf;
use std::process::Command;

fn nggc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nggc"))
}

fn tmp_repo(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nggc_cli_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn run(repo: &PathBuf, args: &[&str]) -> (bool, String, String) {
    let out = nggc().arg("--repo").arg(repo).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn full_cli_workflow() {
    let repo = tmp_repo("flow");

    // init
    let (ok, stdout, _) = run(&repo, &["init"]);
    assert!(ok);
    assert!(stdout.contains("repository initialised"));

    // import a BED file
    let bed = repo.join("peaks.bed");
    std::fs::create_dir_all(&repo).unwrap();
    std::fs::write(
        &bed,
        "chr1\t100\t200\tp1\t5\t+\nchr1\t400\t500\tp2\t9\t-\nchr2\t0\t50\tp3\t2\t+\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = run(&repo, &["import", bed.to_str().unwrap(), "PEAKS"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("imported 3 regions"), "{stdout}");

    // list + info
    let (ok, stdout, _) = run(&repo, &["list"]);
    assert!(ok);
    assert!(stdout.contains("PEAKS"));
    let (ok, stdout, _) = run(&repo, &["info", "PEAKS"]);
    assert!(ok);
    assert!(stdout.contains("3 regions"));
    assert!(stdout.contains("imported_from"));

    // query with --save
    let (ok, stdout, stderr) = run(
        &repo,
        &[
            "query",
            "-e",
            "X = SELECT(region: left >= 100) PEAKS; MATERIALIZE X INTO FILTERED;",
            "--save",
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("FILTERED"), "{stdout}");
    assert!(stdout.contains("2 regions"), "{stdout}");
    let (ok, stdout, _) = run(&repo, &["list"]);
    assert!(ok);
    assert!(stdout.contains("FILTERED"), "--save persisted the output: {stdout}");

    // explain
    let (ok, stdout, _) = run(
        &repo,
        &[
            "query",
            "-e",
            "X = SELECT(a == 1) PEAKS; Y = SELECT(b == 2) X; MATERIALIZE Y;",
            "--explain",
        ],
    );
    assert!(ok);
    assert!(stdout.contains("optimized"));
    assert!(stdout.contains("selects_fused: 1"), "{stdout}");

    // analyze: per-node metrics
    let (ok, stdout, _) = run(
        &repo,
        &["query", "-e", "X = SELECT(region: left >= 100) PEAKS; MATERIALIZE X;", "--analyze"],
    );
    assert!(ok);
    assert!(stdout.contains("execution metrics"), "{stdout}");
    assert!(stdout.contains("SOURCE"), "{stdout}");
    assert!(stdout.contains("SELECT"), "{stdout}");

    // search (metadata carries the import markers)
    let (ok, stdout, _) = run(&repo, &["search", "bed"]);
    assert!(ok);
    assert!(stdout.contains("PEAKS/peaks"), "{stdout}");

    // export
    let out_bed = repo.join("export.bed");
    let (ok, stdout, _) = run(&repo, &["export", "FILTERED", out_bed.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("exported 2 regions"));
    let text = std::fs::read_to_string(&out_bed).unwrap();
    assert!(text.contains("track name="));
    assert!(text.contains("chr1\t100\t200"));

    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_profile_emits_one_span_per_plan_node() {
    let repo = tmp_repo("profile");
    std::fs::create_dir_all(&repo).unwrap();
    let bed = repo.join("peaks.bed");
    std::fs::write(&bed, "chr1\t100\t200\tp1\t5\t+\nchr1\t400\t500\tp2\t9\t-\n").unwrap();
    let (ok, _, stderr) = run(&repo, &["import", bed.to_str().unwrap(), "PEAKS"]);
    assert!(ok, "{stderr}");

    // Plan: SOURCE(PEAKS) -> SELECT -> MERGE = 3 nodes.
    let (ok, stdout, stderr) = run(
        &repo,
        &[
            "query",
            "-e",
            "X = SELECT(region: left >= 100) PEAKS; Y = MERGE() X; MATERIALIZE Y;",
            "--profile",
        ],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- profile: span tree --"), "{stdout}");
    assert!(stdout.contains("exec.plan"), "{stdout}");
    let node_spans = stdout.matches("exec.node").count();
    assert_eq!(node_spans, 3, "one exec.node span per plan node:\n{stdout}");
    for op in ["SOURCE", "SELECT", "MERGE"] {
        assert!(stdout.contains(&format!("op={op}")), "missing {op} span:\n{stdout}");
    }
    // Cardinality and size fields ride on each node span.
    assert!(stdout.contains("samples_in="), "{stdout}");
    assert!(stdout.contains("regions_out="), "{stdout}");
    assert!(stdout.contains("bytes_est="), "{stdout}");
    // Optimizer decisions ride on the plan span.
    assert!(stdout.contains("selects_fused="), "{stdout}");
    // Top-k operator table.
    assert!(stdout.contains("-- profile: top operators by self time --"), "{stdout}");
    assert!(stdout.contains("operator"), "{stdout}");
    assert!(stdout.contains("self"), "{stdout}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_stats_dumps_registry() {
    let repo = tmp_repo("stats");
    std::fs::create_dir_all(&repo).unwrap();
    let bed = repo.join("peaks.bed");
    std::fs::write(&bed, "chr1\t100\t200\tp1\t5\t+\n").unwrap();
    let (ok, _, stderr) = run(&repo, &["import", bed.to_str().unwrap(), "PEAKS"]);
    assert!(ok, "{stderr}");

    // Warm the registry with a query, then dump Prometheus text.
    let q = "X = SELECT(region: left >= 100) PEAKS; MATERIALIZE X;";
    let (ok, stdout, stderr) = run(&repo, &["stats", "-e", q]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("# TYPE nggc_exec_nodes_total counter"), "{stdout}");
    assert!(stdout.contains("nggc_exec_nodes_total{op=\"SOURCE\"} 1"), "{stdout}");
    assert!(stdout.contains("nggc_repo_cache_misses_total"), "{stdout}");
    assert!(stdout.contains("nggc_exec_node_wall_ns_count"), "{stdout}");

    // JSON export of the same registry.
    let (ok, stdout, stderr) = run(&repo, &["stats", "--json", "-e", q]);
    assert!(ok, "{stderr}");
    assert!(stdout.trim().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"name\":\"nggc_exec_nodes_total\""), "{stdout}");
    assert!(stdout.contains("\"type\":\"histogram\""), "{stdout}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_stats_fed_selftest_surfaces_fault_metrics() {
    let repo = tmp_repo("fedself");
    std::fs::create_dir_all(&repo).unwrap();

    // The selftest needs no repository content: it spins an in-process
    // three-node federation (one flaky, one hung peer) and the ensuing
    // retries, timeouts, and breaker transitions land in the registry
    // dumped right after.
    let (ok, stdout, stderr) = run(&repo, &["stats", "--fed-selftest"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("fed-selftest: host=alpha"), "{stdout}");
    assert!(stdout.contains("node=flaky status=Degraded"), "{stdout}");
    assert!(stdout.contains("node=hung status=Unavailable"), "{stdout}");
    assert!(stdout.contains("nggc_fed_retries_total{node=\"flaky\"}"), "{stdout}");
    assert!(stdout.contains("nggc_fed_timeouts_total{node=\"hung\"}"), "{stdout}");
    assert!(stdout.contains("nggc_fed_breaker_state{node=\"hung\"} 2"), "{stdout}");
    assert!(stdout.contains("nggc_fed_breaker_opens_total{node=\"hung\"} 1"), "{stdout}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_errors_are_reported() {
    let repo = tmp_repo("err");
    let (ok, _, stderr) = run(&repo, &["info", "NOPE"]);
    assert!(!ok);
    assert!(stderr.contains("not found"), "{stderr}");

    let (ok, _, stderr) = run(&repo, &["query", "-e", "X = SELEKT() D;"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");

    let (ok, _, stderr) = run(&repo, &["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = run(&repo, &["import", "missing.xyz"]);
    assert!(!ok);
    assert!(stderr.contains("unknown format"), "{stderr}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_import_dir_groups_by_format() {
    let repo = tmp_repo("dir");
    let data = repo.join("incoming");
    std::fs::create_dir_all(&data).unwrap();
    std::fs::write(data.join("a.bed"), "chr1\t0\t10\tx\t1\t+\n").unwrap();
    std::fs::write(data.join("a.bed.meta"), "cell\tHeLa\n").unwrap();
    std::fs::write(data.join("v.vcf"), "chr1\t5\t.\tA\tT\t9\tPASS\t.\n").unwrap();
    std::fs::write(data.join("junk.xyz"), "???").unwrap();
    let (ok, stdout, stderr) = run(&repo, &["import-dir", data.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("INCOMING_BED"), "{stdout}");
    assert!(stdout.contains("INCOMING_VCF"), "{stdout}");
    assert!(stdout.contains("skipped"), "{stdout}");
    let (ok, stdout, _) = run(&repo, &["info", "INCOMING_BED"]);
    assert!(ok);
    assert!(stdout.contains("HeLa"), "sidecar metadata imported: {stdout}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_import_appends_to_existing_dataset() {
    let repo = tmp_repo("append");
    std::fs::create_dir_all(&repo).unwrap();
    let a = repo.join("rep1.bed");
    let b = repo.join("rep2.bed");
    std::fs::write(&a, "chr1\t0\t10\tx\t1\t+\n").unwrap();
    std::fs::write(&b, "chr1\t20\t30\ty\t1\t-\n").unwrap();
    let (ok, _, e1) = run(&repo, &["import", a.to_str().unwrap(), "REPS"]);
    assert!(ok, "{e1}");
    let (ok, stdout, e2) = run(&repo, &["import", b.to_str().unwrap(), "REPS"]);
    assert!(ok, "{e2}");
    assert!(stdout.contains("2 samples total"), "{stdout}");
    std::fs::remove_dir_all(&repo).ok();
}

// ---------------------------------------------------------------------
// Resource-governor exit codes: 124 = deadline (timeout(1) convention),
// 3 = memory budget, 130 = SIGINT (128 + 2). The partial-progress dump
// lands on stderr in every case.
// ---------------------------------------------------------------------

/// Import a dataset big enough that a DLE self-join takes seconds.
fn import_big(repo: &PathBuf) {
    std::fs::create_dir_all(repo).unwrap();
    let mut text = String::new();
    for i in 0..5000u64 {
        let left = (i * 137) % 1_000_000;
        text.push_str(&format!("chr1\t{}\t{}\n", left, left + 500));
    }
    let bed = repo.join("big.bed");
    std::fs::write(&bed, text).unwrap();
    let (ok, _, stderr) = run(repo, &["import", bed.to_str().unwrap(), "BIG"]);
    assert!(ok, "{stderr}");
}

const PATHOLOGICAL: &str = "J = JOIN(DLE(1000000)) BIG BIG; MATERIALIZE J;";

#[test]
fn cli_timeout_exits_124_with_partial_metrics() {
    let repo = tmp_repo("timeout");
    import_big(&repo);
    let out = nggc()
        .arg("--repo")
        .arg(&repo)
        .args(["query", "-e", PATHOLOGICAL, "--timeout", "300ms"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(124), "DeadlineExceeded exit code:\n{stderr}");
    assert!(stderr.contains("partial progress"), "{stderr}");
    assert!(stderr.contains("deadline"), "typed error on stderr: {stderr}");
    assert!(stderr.contains("\"J\""), "the plan node is named: {stderr}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_memory_budget_exits_3() {
    let repo = tmp_repo("membudget");
    import_big(&repo);
    // Generous time, tiny memory: the join output trips the budget.
    let out = nggc()
        .arg("--repo")
        .arg(&repo)
        .args(["query", "-e", "X = SELECT() BIG; MATERIALIZE X;", "--max-memory", "4KiB"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "MemoryExhausted exit code:\n{stderr}");
    assert!(stderr.contains("memory"), "{stderr}");
    std::fs::remove_dir_all(&repo).ok();
}

#[test]
fn cli_env_defaults_apply_and_flags_override() {
    let repo = tmp_repo("envgov");
    import_big(&repo);
    // Env default alone trips the query…
    let out = nggc()
        .arg("--repo")
        .arg(&repo)
        .env("NGGC_QUERY_TIMEOUT", "300ms")
        .args(["query", "-e", PATHOLOGICAL])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(124));
    // …and a malformed env value is a hard error, not silently ignored.
    let out = nggc()
        .arg("--repo")
        .arg(&repo)
        .env("NGGC_QUERY_TIMEOUT", "soon")
        .args(["query", "-e", "X = SELECT() BIG; MATERIALIZE X;"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("NGGC_QUERY_TIMEOUT"));
    std::fs::remove_dir_all(&repo).ok();
}

/// Ctrl-C during `nggc query` exits gracefully: code 130, partial
/// metrics on stderr, no killed-process signal status.
#[cfg(unix)]
#[test]
fn cli_sigint_exits_130_with_partial_metrics() {
    use std::time::{Duration, Instant};
    let repo = tmp_repo("sigint");
    import_big(&repo);
    let mut child = nggc()
        .arg("--repo")
        .arg(&repo)
        .args(["query", "-e", PATHOLOGICAL])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // Let the query get into the join, then deliver SIGINT.
    std::thread::sleep(Duration::from_millis(600));
    let kill =
        Command::new("kill").args(["-INT", &child.id().to_string()]).status().expect("kill runs");
    assert!(kill.success());
    // Graceful exit must come promptly; a regression here would run the
    // full multi-second join (or forever), so poll with a budget.
    let t0 = Instant::now();
    let status = loop {
        if let Some(s) = child.try_wait().expect("try_wait") {
            break s;
        }
        if t0.elapsed() > Duration::from_secs(60) {
            child.kill().ok();
            panic!("SIGINT did not interrupt the query");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let out = child.wait_with_output().expect("collect output");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(status.code(), Some(130), "graceful exit, not a signal kill:\n{stderr}");
    assert!(stderr.contains("partial progress"), "{stderr}");
    assert!(stderr.contains("cancelled"), "{stderr}");
    assert!(stderr.contains("nggc_query_cancelled_total"), "{stderr}");
    std::fs::remove_dir_all(&repo).ok();
}
