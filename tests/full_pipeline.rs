//! Cross-crate integration: synthetic data → repository → GMQL →
//! genome space → network/clustering — the full Figure-4 path.

use nggc::analysis::{kmeans, GenomeSpace, Network};
use nggc::gmql::{ExecOptions, GmqlEngine};
use nggc::repository::Repository;
use nggc::synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};

fn small_world() -> (Genome, nggc::gdm::Dataset, nggc::gdm::Dataset) {
    let genome = Genome::human(0.001);
    let encode = generate_encode(
        &genome,
        &EncodeConfig { samples: 8, mean_peaks_per_sample: 400.0, seed: 11, ..Default::default() },
    );
    let (annotations, _) = generate_annotations(
        &genome,
        &AnnotationConfig { genes: 120, seed: 5, ..Default::default() },
    );
    (genome, encode, annotations)
}

const MAP_QUERY: &str = "
    PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    R     = MAP(peak_count AS COUNT) PROMS PEAKS;
    MATERIALIZE R;
";

#[test]
fn map_query_to_genome_space_to_network() {
    let (_, encode, annotations) = small_world();
    let chip_samples =
        encode.samples.iter().filter(|s| s.metadata.has("dataType", "ChipSeq")).count();
    let mut engine = GmqlEngine::with_workers(4);
    engine.register(encode);
    engine.register(annotations);
    let out = engine.run(MAP_QUERY).unwrap();
    let result = &out["R"];
    assert_eq!(result.sample_count(), chip_samples, "one output sample per experiment");
    assert_eq!(result.samples[0].region_count(), 120, "all promoters kept");
    result.validate().unwrap();

    // Figure 4: MAP result → genome space → gene network.
    let space = GenomeSpace::from_map_result(result, "peak_count", Some("name")).unwrap();
    assert_eq!(space.n_regions(), 120);
    assert_eq!(space.n_experiments(), chip_samples);
    let total: f64 = space.values.iter().flatten().sum();
    assert!(total > 0.0, "some peaks must fall in promoters (hotspot clustering)");

    let network = Network::from_genome_space(&space, 0.7);
    assert_eq!(network.n_nodes(), 120);
    let (_, components) = network.components();
    assert!(components >= 1);

    // Cluster the promoters by peak profile.
    let clustering = kmeans(&space, 4, 50, 7);
    assert_eq!(clustering.assignment.len(), 120);
    let distinct: std::collections::BTreeSet<_> = clustering.assignment.iter().collect();
    assert!(distinct.len() > 1, "profiles must not be degenerate");
}

#[test]
fn repository_backed_query_agrees_with_in_memory() {
    let (_, encode, annotations) = small_world();
    let dir = std::env::temp_dir().join(format!("nggc_repo_it_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut repo = Repository::open(&dir).unwrap();
    repo.save(&encode).unwrap();
    repo.save(&annotations).unwrap();

    // Compile against the catalog (no region loads), execute against the
    // on-disk provider.
    let ctx = nggc::engine::ExecContext::with_workers(4);
    let opts = ExecOptions::default();
    let out = nggc::gmql::run_with_provider(
        MAP_QUERY,
        &|name| repo.schema_of(name),
        &nggc::RepoProvider::new(&repo),
        &ctx,
        &opts,
    )
    .unwrap();

    let mut engine = GmqlEngine::with_workers(4);
    engine.register(encode);
    engine.register(annotations);
    let reference = engine.run(MAP_QUERY).unwrap();

    assert_eq!(out["R"].sample_count(), reference["R"].sample_count());
    assert_eq!(out["R"].region_count(), reference["R"].region_count());
    // Same counts region by region (order is deterministic).
    for (a, b) in out["R"].samples.iter().zip(&reference["R"].samples) {
        let ac: Vec<_> = a.regions.iter().map(|r| r.values.last().cloned()).collect();
        let bc: Vec<_> = b.regions.iter().map(|r| r.values.last().cloned()).collect();
        assert_eq!(ac, bc);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cover_pipeline_over_replicas() {
    let (_, encode, _) = small_world();
    let mut engine = GmqlEngine::with_workers(4);
    engine.register(encode);
    let out = engine
        .run(
            "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
             CONS  = COVER(2, ANY; aggregate: n AS COUNT, max_sig AS MAX(signal_value)) PEAKS;
             MATERIALIZE CONS;",
        )
        .unwrap();
    let cons = &out["CONS"];
    assert_eq!(cons.sample_count(), 1, "COVER flattens to one sample");
    assert!(cons.region_count() > 0, "hotspots recur across samples");
    cons.validate().unwrap();
    // accindex >= 2 everywhere by construction.
    let acc_pos = cons.schema.position("accindex").unwrap();
    assert!(cons.samples[0].regions.iter().all(|r| r.values[acc_pos].as_i64().unwrap() >= 2));
}

#[test]
fn serial_and_parallel_execution_agree() {
    let (_, encode, annotations) = small_world();
    let mut serial = GmqlEngine::with_workers(1);
    serial.register(encode.clone());
    serial.register(annotations.clone());
    let mut parallel = GmqlEngine::with_workers(8);
    parallel.register(encode);
    parallel.register(annotations);

    let s = serial.run(MAP_QUERY).unwrap();
    let p = parallel.run(MAP_QUERY).unwrap();
    assert_eq!(s["R"].sample_count(), p["R"].sample_count());
    for (a, b) in s["R"].samples.iter().zip(&p["R"].samples) {
        assert_eq!(a.regions, b.regions, "parallelism must not change results");
    }
}

#[test]
fn union_of_heterogeneous_formats() {
    // BED-style peaks and VCF-style mutations unify under schema merging.
    use nggc::formats::{parse_peaks, parse_vcf, vcf_schema, PeakKind};
    use nggc::gdm::{Dataset, Sample};

    let peaks_regions = parse_peaks(
        "chr1\t100\t200\tp1\t10\t+\t5.0\t3.0\t2.0\t50\nchr2\t0\t50\tp2\t9\t-\t4.0\t2.0\t1.0\t20\n",
        PeakKind::Narrow,
    )
    .unwrap();
    let mut peaks = Dataset::new("PEAKS", PeakKind::Narrow.schema());
    peaks.add_sample(Sample::new("chip", "PEAKS").with_regions(peaks_regions)).unwrap();

    let vcf_regions = parse_vcf("chr1\t150\trs1\tA\tT\t99\tPASS\tDP=10\n").unwrap();
    let mut muts = Dataset::new("MUTS", vcf_schema());
    muts.add_sample(Sample::new("tumor", "MUTS").with_regions(vcf_regions)).unwrap();

    let mut engine = GmqlEngine::with_workers(2);
    engine.register(peaks);
    engine.register(muts);
    let out = engine.run("U = UNION() PEAKS MUTS; MATERIALIZE U;").unwrap();
    let u = &out["U"];
    assert_eq!(u.sample_count(), 2);
    // Merged schema: narrowPeak attrs + VCF attrs (id renamed if clashing).
    assert!(u.schema.get("p_value").is_some());
    assert!(u.schema.get("ref").is_some());
    u.validate().unwrap();
    // The VCF sample has nulls in the peak columns.
    let vcf_sample = u.sample_by_name("right_tumor").unwrap();
    let p_pos = u.schema.position("p_value").unwrap();
    assert!(vcf_sample.regions[0].values[p_pos].is_null());
}
